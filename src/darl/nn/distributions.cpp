#include "darl/nn/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"

namespace darl::nn {
namespace {

constexpr double kLog2Pi = 1.8378770664093454836;  // log(2*pi)

}  // namespace

Vec Categorical::softmax(const Vec& logits) {
  DARL_CHECK(!logits.empty(), "softmax of empty logits");
  const double m = *std::max_element(logits.begin(), logits.end());
  Vec p(logits.size());
  double z = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    p[i] = std::exp(logits[i] - m);
    z += p[i];
  }
  for (double& v : p) v /= z;
  return p;
}

std::size_t Categorical::sample(const Vec& logits, Rng& rng) {
  return rng.categorical(softmax(logits));
}

double Categorical::log_prob(const Vec& logits, std::size_t a) {
  DARL_CHECK(a < logits.size(), "action " << a << " out of " << logits.size());
  const double m = *std::max_element(logits.begin(), logits.end());
  double z = 0.0;
  for (double l : logits) z += std::exp(l - m);
  return logits[a] - m - std::log(z);
}

double Categorical::entropy(const Vec& logits) {
  const Vec p = softmax(logits);
  double h = 0.0;
  for (double v : p) {
    if (v > 0.0) h -= v * std::log(v);
  }
  return h;
}

Vec Categorical::log_prob_grad(const Vec& logits, std::size_t a) {
  DARL_CHECK(a < logits.size(), "action " << a << " out of " << logits.size());
  Vec g = softmax(logits);
  for (double& v : g) v = -v;
  g[a] += 1.0;
  return g;
}

Vec Categorical::entropy_grad(const Vec& logits) {
  // H = -sum p log p with p = softmax(l).
  // dH/dl_k = -p_k * (log p_k + H)   [standard softmax-entropy gradient]
  const Vec p = softmax(logits);
  const double h = entropy(logits);
  Vec g(p.size());
  for (std::size_t k = 0; k < p.size(); ++k) {
    const double logp = p[k] > 0.0 ? std::log(p[k]) : -745.0;
    g[k] = -p[k] * (logp + h);
  }
  return g;
}

Vec DiagGaussian::sample(const Vec& mean, const Vec& log_std, Rng& rng) {
  DARL_CHECK(mean.size() == log_std.size(), "mean/log_std size mismatch");
  Vec x(mean.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = mean[i] + std::exp(log_std[i]) * rng.normal();
  return x;
}

double DiagGaussian::log_prob(const Vec& mean, const Vec& log_std, const Vec& x) {
  DARL_CHECK(mean.size() == log_std.size() && mean.size() == x.size(),
             "DiagGaussian size mismatch");
  double lp = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double sd = std::exp(log_std[i]);
    const double z = (x[i] - mean[i]) / sd;
    lp += -0.5 * z * z - log_std[i] - 0.5 * kLog2Pi;
  }
  return lp;
}

double DiagGaussian::entropy(const Vec& log_std) {
  double h = 0.0;
  for (double ls : log_std) h += ls + 0.5 * (kLog2Pi + 1.0);
  return h;
}

void DiagGaussian::log_prob_grad(const Vec& mean, const Vec& log_std,
                                 const Vec& x, Vec& d_mean, Vec& d_log_std) {
  DARL_CHECK(mean.size() == log_std.size() && mean.size() == x.size(),
             "DiagGaussian size mismatch");
  d_mean.resize(mean.size());
  d_log_std.resize(mean.size());
  for (std::size_t i = 0; i < mean.size(); ++i) {
    const double sd = std::exp(log_std[i]);
    const double z = (x[i] - mean[i]) / sd;
    d_mean[i] = z / sd;
    d_log_std[i] = z * z - 1.0;
  }
}

SquashedGaussian::Draw SquashedGaussian::sample(const Vec& mean,
                                                const Vec& log_std, Rng& rng) {
  DARL_CHECK(mean.size() == log_std.size(), "mean/log_std size mismatch");
  Draw d;
  const std::size_t n = mean.size();
  d.noise.resize(n);
  d.pre_tanh.resize(n);
  d.action.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    d.noise[i] = rng.normal();
    d.pre_tanh[i] = mean[i] + std::exp(log_std[i]) * d.noise[i];
    d.action[i] = std::tanh(d.pre_tanh[i]);
  }
  d.log_prob = log_prob(mean, log_std, d.pre_tanh);
  return d;
}

Vec SquashedGaussian::mode(const Vec& mean) {
  Vec a(mean.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = std::tanh(mean[i]);
  return a;
}

double SquashedGaussian::log_prob(const Vec& mean, const Vec& log_std,
                                  const Vec& pre_tanh) {
  double lp = DiagGaussian::log_prob(mean, log_std, pre_tanh);
  for (double z : pre_tanh) {
    const double t = std::tanh(z);
    lp -= std::log(1.0 - t * t + kEps);
  }
  return lp;
}

void SquashedGaussian::pathwise_grad(const Vec& mean, const Vec& log_std,
                                     const Vec& pre_tanh, const Vec& noise,
                                     double c_logp, const Vec& grad_action,
                                     Vec& d_mean, Vec& d_log_std) {
  const std::size_t n = mean.size();
  DARL_CHECK(log_std.size() == n && pre_tanh.size() == n && noise.size() == n &&
                 grad_action.size() == n,
             "pathwise_grad size mismatch");
  d_mean.resize(n);
  d_log_std.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = std::tanh(pre_tanh[i]);
    const double sech2 = 1.0 - t * t;
    // d log pi / dz = 2 t sech^2 / (sech^2 + kEps)   (from -log(sech^2+eps))
    const double dlogp_dz = 2.0 * t * sech2 / (sech2 + kEps);
    // dL/dz: logp path + action path through a = tanh(z).
    const double dz = c_logp * dlogp_dz + grad_action[i] * sech2;
    d_mean[i] = dz;  // dz/dmean = 1
    const double sd = std::exp(log_std[i]);
    // dz/dlog_std = sd * eps; plus the direct -1 term of the Gaussian
    // log-density in log_std.
    d_log_std[i] = dz * sd * noise[i] - c_logp;
  }
}

}  // namespace darl::nn
