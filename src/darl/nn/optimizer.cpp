#include "darl/nn/optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "darl/common/error.hpp"

namespace darl::nn {

Optimizer::Optimizer(std::vector<ParamRef> params, double lr)
    : params_(std::move(params)), lr_(lr) {
  DARL_CHECK(!params_.empty(), "optimizer with no parameters");
  DARL_CHECK(lr > 0.0, "learning rate must be positive");
  for (const auto& p : params_) {
    DARL_CHECK(p.value != nullptr && p.grad != nullptr, "null ParamRef");
    DARL_CHECK(p.value->size() == p.grad->size(),
               "param/grad size mismatch for '" << p.name << "'");
  }
}

void Optimizer::zero_grad() {
  for (auto& p : params_) std::fill(p.grad->begin(), p.grad->end(), 0.0);
}

void Optimizer::set_learning_rate(double lr) {
  DARL_CHECK(lr > 0.0, "learning rate must be positive");
  lr_ = lr;
}

Adam::Adam(std::vector<ParamRef> params, double lr, double beta1, double beta2,
           double eps)
    : Optimizer(std::move(params), lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  DARL_CHECK(beta1 >= 0.0 && beta1 < 1.0, "beta1 out of [0,1)");
  DARL_CHECK(beta2 >= 0.0 && beta2 < 1.0, "beta2 out of [0,1)");
  DARL_CHECK(eps > 0.0, "eps must be positive");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value->size(), 0.0);
    v_.emplace_back(p.value->size(), 0.0);
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Vec& w = *params_[i].value;
    const Vec& g = *params_[i].grad;
    Vec& m = m_[i];
    Vec& v = v_[i];
    for (std::size_t j = 0; j < w.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * g[j] * g[j];
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

Sgd::Sgd(std::vector<ParamRef> params, double lr, double momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {
  DARL_CHECK(momentum >= 0.0 && momentum < 1.0, "momentum out of [0,1)");
  velocity_.reserve(params_.size());
  for (const auto& p : params_) velocity_.emplace_back(p.value->size(), 0.0);
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Vec& w = *params_[i].value;
    const Vec& g = *params_[i].grad;
    Vec& vel = velocity_[i];
    for (std::size_t j = 0; j < w.size(); ++j) {
      vel[j] = momentum_ * vel[j] + g[j];
      w[j] -= lr_ * vel[j];
    }
  }
}

double clip_grad_norm(const std::vector<ParamRef>& params, double max_norm) {
  DARL_CHECK(max_norm > 0.0, "max_norm must be positive");
  double sq = 0.0;
  for (const auto& p : params) {
    for (double g : *p.grad) sq += g * g;
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (auto& p : params) {
      for (double& g : *p.grad) g *= scale;
    }
  }
  return norm;
}

}  // namespace darl::nn
