// darl/nn/mlp.hpp
//
// Multi-layer perceptron with manual reverse-mode differentiation — the
// function approximator behind the PPO/SAC policies and value functions.
// Sized for RL workloads (observation dims ~10, hidden 64, per-sample
// forward/backward), double precision throughout, zero allocations on the
// hot path after the first call.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "darl/linalg/matrix.hpp"

namespace darl::nn {

/// Hidden-layer activation functions.
enum class Activation { Tanh, ReLU };

/// A reference to one parameter buffer and its gradient accumulator.
/// Optimizers iterate these; the referenced storage is owned by the model.
struct ParamRef {
  Vec* value = nullptr;
  Vec* grad = nullptr;
  std::string name;
};

/// Fully connected network: input -> (Linear -> act)* -> Linear.
///
/// Usage per sample: y = forward(x); then backward(dL/dy) accumulates
/// parameter gradients (call zero_grad() between optimizer steps) and
/// returns dL/dx. forward/backward must be paired: backward consumes the
/// caches of the immediately preceding forward.
class Mlp {
 public:
  /// `sizes` = {in, hidden..., out}, at least {in, out}. Weights use
  /// Kaiming-style init scaled for the activation; biases start at zero.
  Mlp(const std::vector<std::size_t>& sizes, Activation activation, Rng& rng);

  /// Evaluate the network and cache intermediates for backward().
  const Vec& forward(const Vec& x);

  /// Evaluate without touching the backward caches (safe for concurrent
  /// rollouts where no gradient is needed). Slightly slower than forward()
  /// due to local buffers.
  Vec evaluate(const Vec& x) const;

  /// Back-propagate dL/dy from the last forward(); accumulates gradients
  /// into the parameter buffers and returns dL/dx.
  Vec backward(const Vec& grad_output);

  /// Zero every gradient accumulator.
  void zero_grad();

  /// All parameter buffers (weights then bias per layer, in order).
  std::vector<ParamRef> params();

  /// Total number of scalar parameters.
  std::size_t param_count() const;

  /// Flatten all parameters into one vector (serialization / checkpoints).
  Vec get_flat_params() const;

  /// Load parameters from a flat vector produced by get_flat_params().
  void set_flat_params(const Vec& flat);

  /// Floating-point operations of one forward pass (2*in*out per layer plus
  /// activations) — the unit of the simulated compute-cost model. A
  /// backward pass is charged at twice this.
  double flops_per_forward() const;

  std::size_t input_dim() const { return sizes_.front(); }
  std::size_t output_dim() const { return sizes_.back(); }
  const std::vector<std::size_t>& sizes() const { return sizes_; }
  Activation activation() const { return activation_; }

 private:
  struct LayerGrads {
    Matrix w;
    Vec b;
  };

  double act(double z) const;
  double act_grad(double z) const;

  std::vector<std::size_t> sizes_;
  Activation activation_;
  std::vector<Matrix> weights_;  // weights_[l] is (sizes_[l+1] x sizes_[l])
  std::vector<Vec> biases_;
  std::vector<Matrix> grad_w_;
  std::vector<Vec> grad_b_;

  // forward caches: inputs_[l] is the input to layer l; pre_[l] the
  // pre-activation of layer l.
  std::vector<Vec> inputs_;
  std::vector<Vec> pre_;
  Vec output_;
  bool forward_done_ = false;
};

}  // namespace darl::nn
