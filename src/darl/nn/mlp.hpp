// darl/nn/mlp.hpp
//
// Multi-layer perceptron with manual reverse-mode differentiation — the
// function approximator behind the PPO/SAC/IMPALA policies and value
// functions. Sized for RL workloads (observation dims ~10, hidden 64),
// double precision throughout.
//
// The primary interface is batched: forward_batch/backward_batch/
// evaluate_batch operate on observations-as-rows matrices through
// Matrix::gemm and reuse per-net workspace buffers (activations,
// pre-activations, deltas), so the steady-state hot loop performs zero
// heap allocations. The per-sample forward/backward/evaluate API is a thin
// batch-of-1 wrapper over the same kernels. Because gemm accumulates each
// output element over the contraction index in the same order as
// matvec/matvec_t/add_outer, batched and per-sample results are bitwise
// identical (see DESIGN.md §11).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "darl/linalg/matrix.hpp"

namespace darl::nn {

/// Hidden-layer activation functions.
enum class Activation { Tanh, ReLU };

struct QuantizedNet;  // darl/nn/quantize.hpp

/// A reference to one parameter buffer and its gradient accumulator.
/// Optimizers iterate these; the referenced storage is owned by the model.
struct ParamRef {
  Vec* value = nullptr;
  Vec* grad = nullptr;
  std::string name;
};

/// Fully connected network: input -> (Linear -> act)* -> Linear.
///
/// Batched usage: Y = forward_batch(X) with one observation per row; then
/// backward_batch(dL/dY) accumulates parameter gradients (call zero_grad()
/// between optimizer steps) and returns dL/dX. forward_batch/backward_batch
/// must be paired: backward consumes the caches of the immediately
/// preceding forward. evaluate_batch never touches those caches.
///
/// Instances are NOT safe for concurrent calls — evaluate/evaluate_batch
/// included, since they write the instance's reusable workspace buffers.
/// Each rollout worker owns its own policy copy, so this costs nothing in
/// practice.
class Mlp {
 public:
  /// `sizes` = {in, hidden..., out}, at least {in, out}. Weights use
  /// Kaiming-style init scaled for the activation; biases start at zero.
  Mlp(const std::vector<std::size_t>& sizes, Activation activation, Rng& rng);

  /// Evaluate one sample and cache intermediates for backward().
  /// Batch-of-1 wrapper over forward_batch.
  const Vec& forward(const Vec& x);

  /// Evaluate one sample without touching the backward caches.
  /// Batch-of-1 wrapper over evaluate_batch.
  Vec evaluate(const Vec& x) const;

  /// Back-propagate dL/dy from the last forward(); accumulates gradients
  /// into the parameter buffers and returns dL/dx.
  Vec backward(const Vec& grad_output);

  /// Batched forward over observations-as-rows X (batch x input_dim).
  /// Returns the (batch x output_dim) head matrix — a reference into the
  /// net's workspace, valid until the next forward/evaluate call — and
  /// caches intermediates for backward_batch.
  const Matrix& forward_batch(const Matrix& x);

  /// Batched inference (no backward caches touched). Returns a reference
  /// into the net's evaluation workspace, valid until the next
  /// evaluate/evaluate_batch call.
  const Matrix& evaluate_batch(const Matrix& x) const;

  /// Batched int8 inference through a quantized snapshot of this
  /// network's parameters (see darl/nn/quantize.hpp for the scheme). `qn`
  /// must have been quantized from a network with this architecture. Rows
  /// are processed independently with exact int32 accumulation, so the
  /// result is bitwise identical whether samples arrive batched or one at
  /// a time — the serving self-check for quantized tenants relies on
  /// this. Lossy versus evaluate_batch within the bound returned by
  /// quantization_logit_error_bound. Returns a reference into the
  /// evaluation workspace, valid until the next evaluate call.
  const Matrix& evaluate_batch_quantized(const Matrix& x,
                                         const QuantizedNet& qn) const;

  /// Batched backward for the immediately preceding forward_batch.
  /// grad_output is (batch x output_dim); row i must hold dL/dy for row i
  /// of the forward input. Accumulates parameter gradients exactly as the
  /// equivalent sequence of per-sample backward() calls would (same
  /// per-element accumulation order) and returns dL/dX (batch x input_dim),
  /// a workspace reference valid until the next backward call.
  const Matrix& backward_batch(const Matrix& grad_output);

  /// Zero every gradient accumulator.
  void zero_grad();

  /// All parameter buffers (weights then bias per layer, in order).
  std::vector<ParamRef> params();

  /// Total number of scalar parameters.
  std::size_t param_count() const;

  /// Flatten all parameters into one vector (serialization / checkpoints).
  Vec get_flat_params() const;

  /// Load parameters from a flat vector produced by get_flat_params().
  void set_flat_params(const Vec& flat);

  /// Floating-point operations of one forward pass (2*in*out per layer plus
  /// activations) — the unit of the simulated compute-cost model. A
  /// backward pass is charged at twice this.
  double flops_per_forward() const { return flops_fwd_; }

  std::size_t input_dim() const { return sizes_.front(); }
  std::size_t output_dim() const { return sizes_.back(); }
  const std::vector<std::size_t>& sizes() const { return sizes_; }
  Activation activation() const { return activation_; }

 private:
  /// Grow the forward workspaces (per-layer activations) to hold `batch`
  /// rows. Allocation happens here, outside the batch kernels, and only
  /// until the largest batch has been seen.
  void ensure_forward_ws(std::size_t batch);

  /// Grow the quantized-path scratch (one uint8 row of the widest layer
  /// input). Allocation lives here, outside the kernels.
  void ensure_quant_ws() const;

  /// In-place activation / activation-derivative application; identical
  /// scalar math to the per-sample act/act_grad. The derivative is read
  /// off the stored activation output (for tanh, 1 - a^2 with a the stored
  /// tanh value — the same double the pre-activation recompute would give;
  /// for ReLU, a > 0 exactly when z > 0).
  void apply_act(Matrix& z) const;
  void scale_by_act_grad(Matrix& delta, const Matrix& act) const;

  std::vector<std::size_t> sizes_;
  Activation activation_;
  std::vector<Matrix> weights_;  // weights_[l] is (sizes_[l+1] x sizes_[l])
  std::vector<Vec> biases_;
  std::vector<Matrix> grad_w_;
  std::vector<Vec> grad_b_;
  double flops_fwd_ = 0.0;

  // Reusable batch workspaces. ws_act_[l] holds the input rows of layer l
  // (ws_act_.back() is the network output); hidden slots hold the
  // activation outputs the backward pass differentiates through. The
  // delta pair ping-pongs through backward_batch; the eval pair through
  // evaluate_batch (mutable: evaluate is logically const but reuses
  // instance-owned scratch). (The PR-4 transposed-weight cache is gone:
  // Matrix::gemm now packs the NT operand internally when the batch is
  // large enough to pay for it.)
  std::vector<Matrix> ws_act_;
  Matrix ws_delta_a_, ws_delta_b_;
  mutable Matrix ws_eval_a_, ws_eval_b_;
  // Batch-of-1 staging rows for the per-sample wrappers.
  Matrix ws_x1_, ws_g1_;
  mutable Matrix ws_eval_x1_;
  // Quantized-activation row scratch for evaluate_batch_quantized.
  mutable std::vector<std::uint8_t> ws_qx_;
  Vec output_;
  std::size_t forward_rows_ = 0;  ///< rows of the pending forward (0 = none)
};

}  // namespace darl::nn
