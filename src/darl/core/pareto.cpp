#include "darl/core/pareto.hpp"

#include <algorithm>
#include <cmath>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"

namespace darl::core {
namespace {

/// Convert a point to minimization form (negate maximized metrics).
std::vector<double> to_min_form(const std::vector<double>& p,
                                const std::vector<Sense>& senses) {
  std::vector<double> out(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    out[i] = senses[i] == Sense::Minimize ? p[i] : -p[i];
  }
  return out;
}

void check_shapes(const std::vector<std::vector<double>>& points,
                  const std::vector<Sense>& senses) {
  DARL_CHECK(!senses.empty(), "no metric senses given");
  for (const auto& p : points) {
    DARL_CHECK(p.size() == senses.size(),
               "point has " << p.size() << " coordinates, senses "
                            << senses.size());
  }
}

}  // namespace

bool dominates(const std::vector<double>& a, const std::vector<double>& b,
               const std::vector<Sense>& senses) {
  DARL_CHECK(a.size() == senses.size() && b.size() == senses.size(),
             "dominates: size mismatch");
  bool strictly_better = false;
  for (std::size_t i = 0; i < senses.size(); ++i) {
    const double av = senses[i] == Sense::Minimize ? a[i] : -a[i];
    const double bv = senses[i] == Sense::Minimize ? b[i] : -b[i];
    if (av > bv) return false;
    if (av < bv) strictly_better = true;
  }
  return strictly_better;
}

std::vector<std::size_t> pareto_front(
    const std::vector<std::vector<double>>& points,
    const std::vector<Sense>& senses) {
  check_shapes(points, senses);
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (i != j && dominates(points[j], points[i], senses)) dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::vector<std::vector<std::size_t>> non_dominated_sort(
    const std::vector<std::vector<double>>& points,
    const std::vector<Sense>& senses) {
  check_shapes(points, senses);
  std::vector<std::vector<std::size_t>> fronts;
  std::vector<bool> assigned(points.size(), false);
  std::size_t remaining = points.size();
  while (remaining > 0) {
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (assigned[i]) continue;
      bool dominated = false;
      for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
        if (j != i && !assigned[j] && dominates(points[j], points[i], senses)) {
          dominated = true;
        }
      }
      if (!dominated) front.push_back(i);
    }
    DARL_ASSERT(!front.empty(), "non-dominated sort made no progress");
    for (std::size_t idx : front) assigned[idx] = true;
    remaining -= front.size();
    fronts.push_back(std::move(front));
  }
  return fronts;
}

double hypervolume_2d(const std::vector<std::vector<double>>& points,
                      const std::vector<Sense>& senses,
                      const std::vector<double>& reference) {
  DARL_CHECK(senses.size() == 2, "hypervolume_2d needs exactly 2 objectives");
  check_shapes(points, senses);
  DARL_CHECK(reference.size() == 2, "reference must have 2 coordinates");
  if (points.empty()) return 0.0;

  const std::vector<double> ref = to_min_form(reference, senses);
  std::vector<std::vector<double>> mins;
  mins.reserve(points.size());
  for (const auto& p : points) {
    const auto m = to_min_form(p, senses);
    if (m[0] < ref[0] && m[1] < ref[1]) mins.push_back(m);
  }
  if (mins.empty()) return 0.0;

  // Keep the non-dominated subset, sweep by x ascending.
  std::sort(mins.begin(), mins.end());
  double hv = 0.0;
  double best_y = ref[1];
  for (const auto& p : mins) {
    if (p[1] < best_y) {
      hv += (ref[0] - p[0]) * (best_y - p[1]);
      best_y = p[1];
    }
  }
  return hv;
}

double hypervolume_monte_carlo(const std::vector<std::vector<double>>& points,
                               const std::vector<Sense>& senses,
                               const std::vector<double>& reference,
                               std::size_t samples, Rng& rng) {
  check_shapes(points, senses);
  DARL_CHECK(reference.size() == senses.size(), "reference size mismatch");
  DARL_CHECK(samples > 0, "need at least one sample");
  if (points.empty()) return 0.0;

  const std::vector<double> ref = to_min_form(reference, senses);
  std::vector<std::vector<double>> mins;
  mins.reserve(points.size());
  for (const auto& p : points) mins.push_back(to_min_form(p, senses));

  // Ideal corner of the sampling box: the coordinate-wise best.
  std::vector<double> ideal = mins[0];
  for (const auto& p : mins) {
    for (std::size_t d = 0; d < ideal.size(); ++d) ideal[d] = std::min(ideal[d], p[d]);
  }
  double box = 1.0;
  for (std::size_t d = 0; d < ideal.size(); ++d) {
    const double span = ref[d] - ideal[d];
    if (span <= 0.0) return 0.0;
    box *= span;
  }

  std::size_t hits = 0;
  std::vector<double> x(ideal.size());
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t d = 0; d < x.size(); ++d) x[d] = rng.uniform(ideal[d], ref[d]);
    for (const auto& p : mins) {
      bool dominated = true;
      for (std::size_t d = 0; d < x.size(); ++d) {
        if (p[d] > x[d]) {
          dominated = false;
          break;
        }
      }
      if (dominated) {
        ++hits;
        break;
      }
    }
  }
  return box * static_cast<double>(hits) / static_cast<double>(samples);
}

}  // namespace darl::core
