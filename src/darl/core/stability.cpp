#include "darl/core/stability.hpp"

#include <algorithm>
#include <cmath>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"
#include "darl/core/pareto.hpp"

namespace darl::core {

StabilityResult front_stability(const std::vector<std::vector<double>>& points,
                                const MetricSet& metrics,
                                const StabilityOptions& options, Rng& rng) {
  DARL_CHECK(options.samples > 0, "stability needs at least one sample");
  DARL_CHECK(options.relative_noise >= 0.0, "negative relative noise");
  const std::size_t m = metrics.size();
  DARL_CHECK(options.absolute_stddev.empty() ||
                 options.absolute_stddev.size() == m,
             "absolute_stddev must match the metric count");
  for (const auto& p : points) {
    DARL_CHECK(p.size() == m, "point/metric size mismatch");
  }

  std::vector<Sense> senses;
  senses.reserve(m);
  for (const auto& d : metrics.defs()) senses.push_back(d.sense);

  StabilityResult out;
  out.membership.assign(points.size(), 0.0);
  if (points.empty()) return out;

  std::vector<std::vector<double>> noisy = points;
  for (std::size_t s = 0; s < options.samples; ++s) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        double sd = 0.0;
        if (!options.absolute_stddev.empty() && options.absolute_stddev[j] > 0.0) {
          sd = options.absolute_stddev[j];
        } else {
          sd = options.relative_noise * std::abs(points[i][j]);
        }
        noisy[i][j] = points[i][j] + rng.normal(0.0, sd);
      }
    }
    for (std::size_t idx : pareto_front(noisy, senses)) {
      out.membership[idx] += 1.0;
    }
  }
  for (double& f : out.membership) f /= static_cast<double>(options.samples);

  for (std::size_t i = 0; i < out.membership.size(); ++i) {
    if (out.membership[i] >= 0.5) out.robust_front.push_back(i);
  }
  std::stable_sort(out.robust_front.begin(), out.robust_front.end(),
                   [&](std::size_t a, std::size_t b) {
                     return out.membership[a] > out.membership[b];
                   });
  return out;
}

}  // namespace darl::core
