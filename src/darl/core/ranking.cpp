#include "darl/core/ranking.hpp"

#include <algorithm>
#include <limits>

#include "darl/common/error.hpp"
#include "darl/core/pareto.hpp"

namespace darl::core {
namespace {

std::vector<Sense> senses_of(const MetricSet& metrics) {
  std::vector<Sense> senses;
  senses.reserve(metrics.size());
  for (const auto& d : metrics.defs()) senses.push_back(d.sense);
  return senses;
}

}  // namespace

std::vector<RankedTrial> ParetoRanking::rank(
    const MetricSet& metrics,
    const std::vector<std::vector<double>>& points) const {
  const auto fronts = non_dominated_sort(points, senses_of(metrics));
  std::vector<RankedTrial> out;
  out.reserve(points.size());
  for (std::size_t f = 0; f < fronts.size(); ++f) {
    for (std::size_t idx : fronts[f]) {
      RankedTrial r;
      r.trial_index = idx;
      r.rank = f;
      r.score = -static_cast<double>(f);
      r.pareto_optimal = (f == 0);
      out.push_back(r);
    }
  }
  return out;
}

WeightedSumRanking::WeightedSumRanking(std::vector<double> weights)
    : weights_(std::move(weights)) {}

std::vector<RankedTrial> WeightedSumRanking::rank(
    const MetricSet& metrics,
    const std::vector<std::vector<double>>& points) const {
  const std::size_t m = metrics.size();
  std::vector<double> w = weights_;
  if (w.empty()) w.assign(m, 1.0 / static_cast<double>(m));
  DARL_CHECK(w.size() == m, "got " << w.size() << " weights for " << m << " metrics");

  // Min-max normalize each metric to "higher is better" in [0,1].
  std::vector<double> lo(m, std::numeric_limits<double>::infinity());
  std::vector<double> hi(m, -std::numeric_limits<double>::infinity());
  for (const auto& p : points) {
    DARL_CHECK(p.size() == m, "point/metric size mismatch");
    for (std::size_t j = 0; j < m; ++j) {
      lo[j] = std::min(lo[j], p[j]);
      hi[j] = std::max(hi[j], p[j]);
    }
  }
  std::vector<RankedTrial> out;
  out.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    double score = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      const double span = hi[j] - lo[j];
      double v = span > 0.0 ? (points[i][j] - lo[j]) / span : 0.5;
      if (metrics.defs()[j].sense == Sense::Minimize) v = 1.0 - v;
      score += w[j] * v;
    }
    RankedTrial r;
    r.trial_index = i;
    r.score = score;
    out.push_back(r);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const RankedTrial& a, const RankedTrial& b) {
                     return a.score > b.score;
                   });
  for (std::size_t i = 0; i < out.size(); ++i) out[i].rank = i;

  // Annotate Pareto optimality for reference.
  const auto front = pareto_front(points, senses_of(metrics));
  for (auto& r : out) {
    r.pareto_optimal =
        std::find(front.begin(), front.end(), r.trial_index) != front.end();
  }
  return out;
}

SingleMetricRanking::SingleMetricRanking(std::string metric_name)
    : metric_name_(std::move(metric_name)) {
  name_ = "SortedBy(" + metric_name_ + ")";
}

std::vector<RankedTrial> SingleMetricRanking::rank(
    const MetricSet& metrics,
    const std::vector<std::vector<double>>& points) const {
  const MetricDef& def = metrics.def(metric_name_);
  std::size_t col = 0;
  for (std::size_t j = 0; j < metrics.size(); ++j) {
    if (metrics.defs()[j].name == metric_name_) col = j;
  }
  std::vector<RankedTrial> out;
  out.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    DARL_CHECK(points[i].size() == metrics.size(), "point/metric size mismatch");
    RankedTrial r;
    r.trial_index = i;
    r.score = def.sense == Sense::Maximize ? points[i][col] : -points[i][col];
    out.push_back(r);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const RankedTrial& a, const RankedTrial& b) {
                     return a.score > b.score;
                   });
  for (std::size_t i = 0; i < out.size(); ++i) out[i].rank = i;
  const auto front = pareto_front(points, senses_of(metrics));
  for (auto& r : out) {
    r.pareto_optimal =
        std::find(front.begin(), front.end(), r.trial_index) != front.end();
  }
  return out;
}

}  // namespace darl::core
