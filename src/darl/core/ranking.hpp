// darl/core/ranking.hpp
//
// Stage (e) of the methodology: ranking methods. A RankingMethod builds a
// hierarchy over evaluated configurations; the paper names Pareto fronts
// (its choice) and sorted arrays as examples. Weighted-sum scalarization is
// provided as a third option.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "darl/core/metric.hpp"

namespace darl::core {

/// Rank assigned to one trial. Lower rank is better; rank 0 of
/// ParetoRanking is the Pareto-optimal set.
struct RankedTrial {
  std::size_t trial_index = 0;  ///< index into the input point table
  std::size_t rank = 0;
  double score = 0.0;           ///< method-specific (higher is better)
  bool pareto_optimal = false;
};

/// Orders trials given their metric table (one row per trial, columns in
/// MetricSet declaration order).
class RankingMethod {
 public:
  virtual ~RankingMethod() = default;
  virtual const std::string& name() const = 0;

  /// Returns one entry per input row, sorted best-first.
  virtual std::vector<RankedTrial> rank(
      const MetricSet& metrics,
      const std::vector<std::vector<double>>& points) const = 0;
};

/// Non-dominated sorting: rank = Pareto front index; ties within a front
/// keep input order. The paper's choice.
class ParetoRanking final : public RankingMethod {
 public:
  const std::string& name() const override { return name_; }
  std::vector<RankedTrial> rank(
      const MetricSet& metrics,
      const std::vector<std::vector<double>>& points) const override;

 private:
  std::string name_ = "ParetoFront";
};

/// Scalarization: metrics are min-max normalized to "higher is better" in
/// [0, 1] across the trials, then combined with the given weights (uniform
/// when empty). Rank = position in the sorted order.
class WeightedSumRanking final : public RankingMethod {
 public:
  explicit WeightedSumRanking(std::vector<double> weights = {});
  const std::string& name() const override { return name_; }
  std::vector<RankedTrial> rank(
      const MetricSet& metrics,
      const std::vector<std::vector<double>>& points) const override;

 private:
  std::string name_ = "WeightedSum";
  std::vector<double> weights_;
};

/// Sorted array over a single metric (the paper's "sorted arrays" example).
class SingleMetricRanking final : public RankingMethod {
 public:
  explicit SingleMetricRanking(std::string metric_name);
  const std::string& name() const override { return name_; }
  std::vector<RankedTrial> rank(
      const MetricSet& metrics,
      const std::vector<std::vector<double>>& points) const override;

 private:
  std::string name_;
  std::string metric_name_;
};

}  // namespace darl::core
