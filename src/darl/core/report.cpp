#include "darl/core/report.hpp"

#include <algorithm>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "darl/common/ascii_plot.hpp"
#include "darl/common/csv.hpp"
#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"
#include "darl/common/table.hpp"
#include "darl/core/pareto.hpp"
#include "darl/core/stability.hpp"

namespace darl::core {
namespace {

std::vector<std::string> param_columns(const CaseStudyDef& def,
                                       const std::vector<std::string>& order) {
  if (!order.empty()) return order;
  std::vector<std::string> names;
  for (const auto& d : def.space.domains()) names.push_back(d.name());
  return names;
}

}  // namespace

std::string render_trial_table(const CaseStudyDef& def,
                               const std::vector<TrialRecord>& trials,
                               const std::vector<std::string>& param_order) {
  const auto params = param_columns(def, param_order);
  const bool any_failed =
      std::any_of(trials.begin(), trials.end(),
                  [](const TrialRecord& t) { return !t.ok(); });
  TextTable table;
  std::vector<std::string> cols{"#"};
  std::vector<Align> aligns{Align::Right};
  for (const auto& p : params) {
    cols.push_back(p);
    aligns.push_back(Align::Left);
  }
  for (const auto& m : def.metrics.defs()) {
    cols.push_back(m.unit.empty() ? m.name : m.name + " (" + m.unit + ")");
    aligns.push_back(Align::Right);
  }
  if (any_failed) {
    cols.push_back("status");
    aligns.push_back(Align::Left);
  }
  table.set_columns(cols, aligns);

  for (const auto& t : trials) {
    std::vector<std::string> row;
    row.push_back(std::to_string(t.id + 1));  // paper numbering is 1-based
    for (const auto& p : params) {
      row.push_back(t.config.has(p) ? param_value_to_string(t.config.get(p))
                                    : "-");
    }
    for (const auto& m : def.metrics.defs()) {
      const auto it = t.metrics.find(m.name);
      row.push_back(it == t.metrics.end() ? "-" : fixed(it->second, 2));
    }
    if (any_failed) row.push_back(trial_status_name(t.status));
    table.add_row(std::move(row));
  }
  return table.render();
}

std::string render_pareto_plot(const CaseStudyDef& def,
                               const std::vector<TrialRecord>& trials,
                               const std::string& metric_x,
                               const std::string& metric_y,
                               const std::string& title,
                               std::vector<std::size_t>* front_trial_ids) {
  const MetricDef& mx = def.metrics.def(metric_x);
  const MetricDef& my = def.metrics.def(metric_y);

  std::vector<std::vector<double>> points;
  std::vector<std::size_t> ids;
  for (const auto& t : trials) {
    if (!t.ok() || t.budget_fraction < 1.0) continue;
    const auto ix = t.metrics.find(metric_x);
    const auto iy = t.metrics.find(metric_y);
    DARL_CHECK(ix != t.metrics.end() && iy != t.metrics.end(),
               "trial " << t.id << " lacks plotted metrics");
    points.push_back({ix->second, iy->second});
    ids.push_back(t.id);
  }
  const auto front = pareto_front(points, {mx.sense, my.sense});
  if (front_trial_ids != nullptr) {
    front_trial_ids->clear();
    for (std::size_t f : front) front_trial_ids->push_back(ids[f]);
  }

  std::vector<PlotPoint> plot;
  plot.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    PlotPoint p;
    p.x = points[i][0];
    p.y = points[i][1];
    p.label = std::to_string(ids[i] + 1);
    p.highlight = std::find(front.begin(), front.end(), i) != front.end();
    plot.push_back(p);
  }
  PlotOptions opts;
  opts.title = title;
  opts.x_label = mx.unit.empty() ? metric_x : metric_x + " (" + mx.unit + ")";
  opts.y_label = my.unit.empty() ? metric_y : metric_y + " (" + my.unit + ")";
  return render_scatter(plot, opts);
}

namespace {

constexpr const char* kPhaseKeys[] = {"CollectSeconds", "LearnSeconds",
                                      "SyncSeconds"};

bool has_phase_metrics(const TrialRecord& t) {
  for (const char* key : kPhaseKeys) {
    if (t.metrics.find(key) == t.metrics.end()) return false;
  }
  return true;
}

}  // namespace

std::string render_phase_breakdown(const std::vector<TrialRecord>& trials) {
  const bool any = std::any_of(trials.begin(), trials.end(), has_phase_metrics);
  if (!any) return "";

  TextTable table;
  table.set_columns({"#", "collect (s)", "learn (s)", "sync (s)", "total (s)",
                     "collect %"},
                    {Align::Right, Align::Right, Align::Right, Align::Right,
                     Align::Right, Align::Right});
  for (const auto& t : trials) {
    if (!has_phase_metrics(t)) continue;
    const double collect = t.metrics.at("CollectSeconds");
    const double learn = t.metrics.at("LearnSeconds");
    const double sync = t.metrics.at("SyncSeconds");
    const double total = collect + learn + sync;
    table.add_row({std::to_string(t.id + 1), fixed(collect, 3), fixed(learn, 3),
                   fixed(sync, 3), fixed(total, 3),
                   total > 0.0 ? fixed(100.0 * collect / total, 1) : "-"});
  }
  return "Per-trial phase breakdown (host seconds):\n" + table.render();
}

void write_trials_csv(std::ostream& out, const CaseStudyDef& def,
                      const std::vector<TrialRecord>& trials) {
  // max_digits10 significant digits round-trip doubles exactly; anything
  // less lets cache loads flip low-order bits (and downstream Pareto ties).
  constexpr int kDoubleDigits = std::numeric_limits<double>::max_digits10;
  CsvWriter csv(out);
  std::vector<std::string> header{"id", "budget_fraction", "status",
                                  "attempts", "error", "config"};
  for (const auto& m : def.metrics.defs()) header.push_back(m.name);
  csv.header(header);
  for (const auto& t : trials) {
    csv.begin_row();
    csv.integer(static_cast<long long>(t.id));
    csv.number(t.budget_fraction, kDoubleDigits);
    csv.field(trial_status_name(t.status));
    csv.integer(static_cast<long long>(t.attempts));
    csv.field(t.error);
    csv.field(t.config.describe());
    for (const auto& m : def.metrics.defs()) {
      const auto it = t.metrics.find(m.name);
      if (it == t.metrics.end()) {
        DARL_CHECK(!t.ok(), "trial missing metric '" << m.name << "'");
        csv.field("");
      } else {
        csv.number(it->second, kDoubleDigits);
      }
    }
    csv.end_row();
  }
}

LearningConfiguration parse_configuration(const ParamSpace& space,
                                          const std::string& description) {
  LearningConfiguration config;
  std::stringstream ss(description);
  std::string piece;
  while (std::getline(ss, piece, ',')) {
    // trim
    const auto b = piece.find_first_not_of(' ');
    const auto e = piece.find_last_not_of(' ');
    DARL_CHECK(b != std::string::npos, "empty configuration fragment");
    piece = piece.substr(b, e - b + 1);
    const auto eq = piece.find('=');
    DARL_CHECK(eq != std::string::npos, "malformed fragment '" << piece << "'");
    const std::string key = piece.substr(0, eq);
    const std::string val = piece.substr(eq + 1);
    const ParamDomain& dom = space.domain(key);
    if (dom.is_categorical()) {
      config.set(key, val);
    } else if (dom.is_integer()) {
      config.set(key, static_cast<std::int64_t>(std::stoll(val)));
    } else {
      config.set(key, std::stod(val));
    }
  }
  return config;
}

std::optional<std::vector<TrialRecord>> load_trials_csv(std::istream& in,
                                                        const CaseStudyDef& def) {
  std::string header_line;
  if (!std::getline(in, header_line)) return std::nullopt;
  std::string expected = "id,budget_fraction,status,attempts,error,config";
  for (const auto& m : def.metrics.defs()) expected += "," + m.name;
  if (header_line != expected) return std::nullopt;
  constexpr std::size_t kFixedCols = 6;

  std::vector<TrialRecord> trials;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // Parse with quote awareness (the config field is quoted when it
    // contains commas — which it does for multi-parameter configs).
    std::vector<std::string> fields;
    std::string cur;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (quoted) {
        if (c == '"') {
          if (i + 1 < line.size() && line[i + 1] == '"') {
            cur += '"';
            ++i;
          } else {
            quoted = false;
          }
        } else {
          cur += c;
        }
      } else if (c == '"') {
        quoted = true;
      } else if (c == ',') {
        fields.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    fields.push_back(cur);
    if (fields.size() != kFixedCols + def.metrics.size()) return std::nullopt;

    TrialRecord t;
    try {
      t.id = static_cast<std::size_t>(std::stoull(fields[0]));
      t.budget_fraction = std::stod(fields[1]);
      const auto status = trial_status_from_name(fields[2]);
      if (!status.has_value()) return std::nullopt;
      t.status = *status;
      t.attempts = static_cast<std::size_t>(std::stoull(fields[3]));
      t.error = fields[4];
      t.config = parse_configuration(def.space, fields[5]);
      for (std::size_t j = 0; j < def.metrics.size(); ++j) {
        const std::string& cell = fields[kFixedCols + j];
        // Failed trials persist empty metric cells.
        if (cell.empty()) {
          if (t.ok()) return std::nullopt;
          continue;
        }
        t.metrics[def.metrics.defs()[j].name] = std::stod(cell);
      }
    } catch (const std::exception&) {
      return std::nullopt;
    }
    trials.push_back(std::move(t));
  }
  if (trials.empty()) return std::nullopt;
  return trials;
}

std::string config_list_digest(
    const std::vector<LearningConfiguration>& configs) {
  std::string blob;
  for (const auto& c : configs) {
    blob += c.cache_key();
    blob += '\n';
  }
  std::ostringstream oss;
  oss << std::hex << std::setw(16) << std::setfill('0') << fnv1a64(blob);
  return oss.str();
}

namespace {

constexpr const char* kCacheMagic = "# darl-campaign-cache v2";

std::string cache_meta_line(const CampaignCacheKey& key) {
  std::ostringstream oss;
  oss << kCacheMagic << " seed=" << key.seed << " digest=" << key.config_digest;
  return oss.str();
}

}  // namespace

void write_campaign_cache(std::ostream& out, const CaseStudyDef& def,
                          const std::vector<TrialRecord>& trials,
                          const CampaignCacheKey& key) {
  out << cache_meta_line(key) << '\n';
  write_trials_csv(out, def, trials);
}

std::optional<std::vector<TrialRecord>> load_campaign_cache(
    std::istream& in, const CaseStudyDef& def, const CampaignCacheKey& key) {
  std::string meta;
  if (!std::getline(in, meta)) return std::nullopt;
  // Any mismatch — missing meta line, different seed, different config
  // list — means the cache answers a different campaign: treat as stale.
  if (meta != cache_meta_line(key)) return std::nullopt;
  return load_trials_csv(in, def);
}

std::string render_failure_summary(const std::vector<TrialRecord>& trials) {
  const bool any =
      std::any_of(trials.begin(), trials.end(),
                  [](const TrialRecord& t) { return !t.ok(); });
  if (!any) return "";

  TextTable table;
  table.set_columns({"#", "status", "attempts", "error"},
                    {Align::Right, Align::Left, Align::Right, Align::Left});
  for (const auto& t : trials) {
    if (t.ok()) continue;
    table.add_row({std::to_string(t.id + 1), trial_status_name(t.status),
                   std::to_string(t.attempts), t.error});
  }
  return "Failed trials (excluded from tables, fronts and rankings):\n" +
         table.render();
}

std::string write_markdown_report(const CaseStudyDef& def,
                                  const std::vector<TrialRecord>& trials,
                                  const MarkdownReportOptions& options) {
  const std::size_t failed = static_cast<std::size_t>(
      std::count_if(trials.begin(), trials.end(),
                    [](const TrialRecord& t) { return !t.ok(); }));
  std::ostringstream md;
  md << "# Decision analysis: " << def.name << "\n\n";
  md << trials.size() << " evaluated configurations";
  if (failed > 0) md << " (" << failed << " failed)";
  md << ", " << def.metrics.size() << " metrics (";
  for (std::size_t i = 0; i < def.metrics.size(); ++i) {
    if (i) md << ", ";
    md << def.metrics.defs()[i].name << " "
       << sense_name(def.metrics.defs()[i].sense);
  }
  md << ").\n\n";

  // --- campaign table.
  md << "## Evaluated configurations\n\n|#|";
  for (const auto& d : def.space.domains()) md << d.name() << "|";
  for (const auto& m : def.metrics.defs()) {
    md << m.name << (m.unit.empty() ? "" : " (" + m.unit + ")") << "|";
  }
  md << "\n|-|";
  for (std::size_t i = 0; i < def.space.size() + def.metrics.size(); ++i)
    md << "-|";
  md << "\n";
  for (const auto& t : trials) {
    md << "|" << (t.id + 1) << "|";
    for (const auto& d : def.space.domains()) {
      md << (t.config.has(d.name())
                 ? param_value_to_string(t.config.get(d.name()))
                 : "-")
         << "|";
    }
    for (const auto& m : def.metrics.defs()) {
      const auto it = t.metrics.find(m.name);
      md << (it == t.metrics.end() ? std::string("-") : fixed(it->second, 2))
         << "|";
    }
    md << "\n";
  }
  md << "\n";

  // --- failure summary (faults are first-class campaign events).
  if (failed > 0) {
    md << "## Failed trials\n\n"
       << "Excluded from fronts, rankings and stability below.\n\n"
       << "|#|status|attempts|error|\n|-|-|-|-|\n";
    for (const auto& t : trials) {
      if (t.ok()) continue;
      md << "|" << (t.id + 1) << "|" << trial_status_name(t.status) << "|"
         << t.attempts << "|" << t.error << "|\n";
    }
    md << "\n";
  }

  // --- phase-time breakdown (when the trials carry the diagnostics).
  if (std::any_of(trials.begin(), trials.end(), has_phase_metrics)) {
    md << "## Phase breakdown (host seconds)\n\n"
       << "|#|collect|learn|sync|total|\n|-|-|-|-|-|\n";
    for (const auto& t : trials) {
      if (!has_phase_metrics(t)) continue;
      const double collect = t.metrics.at("CollectSeconds");
      const double learn = t.metrics.at("LearnSeconds");
      const double sync = t.metrics.at("SyncSeconds");
      md << "|" << (t.id + 1) << "|" << fixed(collect, 3) << "|"
         << fixed(learn, 3) << "|" << fixed(sync, 3) << "|"
         << fixed(collect + learn + sync, 3) << "|\n";
    }
    md << "\n";
  }

  // --- Pareto-front sections.
  auto figures = options.figures;
  if (figures.empty()) {
    const auto& defs = def.metrics.defs();
    for (std::size_t i = 0; i + 1 < defs.size(); ++i) {
      figures.emplace_back(defs[i].name, defs[i + 1].name);
    }
    if (defs.size() > 2) figures.emplace_back(defs.back().name, defs[0].name);
  }
  for (const auto& [x, y] : figures) {
    std::vector<std::size_t> front;
    const std::string plot =
        render_pareto_plot(def, trials, x, y, y + " vs " + x, &front);
    md << "## Trade-off: " << y << " vs " << x << "\n\n";
    md << "Non-dominated solutions: ";
    for (std::size_t i = 0; i < front.size(); ++i) {
      if (i) md << ", ";
      md << "#" << (front[i] + 1);
    }
    md << "\n\n```\n" << plot << "```\n\n";
  }

  // --- stability section (successful trials only; failed trials carry no
  // metrics to resample).
  std::vector<std::size_t> ok_indices;
  for (std::size_t i = 0; i < trials.size(); ++i) {
    if (trials[i].ok()) ok_indices.push_back(i);
  }
  if (options.include_stability && !ok_indices.empty()) {
    std::vector<std::vector<double>> points;
    points.reserve(ok_indices.size());
    for (std::size_t i : ok_indices) {
      points.push_back(def.metrics.extract(trials[i].metrics));
    }
    StabilityOptions sopts;
    sopts.samples = options.stability_samples;
    sopts.relative_noise = options.stability_relative_noise;
    Rng rng(options.stability_seed);
    const StabilityResult st = front_stability(points, def.metrics, sopts, rng);
    md << "## Front stability (" << sopts.samples << " resamples, "
       << fixed(100.0 * sopts.relative_noise, 0) << "% relative noise)\n\n"
       << "|#|front membership|\n|-|-|\n";
    for (std::size_t k = 0; k < ok_indices.size(); ++k) {
      md << "|" << (trials[ok_indices[k]].id + 1) << "|"
         << fixed(100.0 * st.membership[k], 1) << "%"
         << (st.membership[k] >= 0.5 ? " **robust**" : "") << "|\n";
    }
    md << "\n";
  }
  return md.str();
}

}  // namespace darl::core
