#include "darl/core/report.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "darl/common/ascii_plot.hpp"
#include "darl/common/csv.hpp"
#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"
#include "darl/common/table.hpp"
#include "darl/core/pareto.hpp"
#include "darl/core/stability.hpp"

namespace darl::core {
namespace {

std::vector<std::string> param_columns(const CaseStudyDef& def,
                                       const std::vector<std::string>& order) {
  if (!order.empty()) return order;
  std::vector<std::string> names;
  for (const auto& d : def.space.domains()) names.push_back(d.name());
  return names;
}

}  // namespace

std::string render_trial_table(const CaseStudyDef& def,
                               const std::vector<TrialRecord>& trials,
                               const std::vector<std::string>& param_order) {
  const auto params = param_columns(def, param_order);
  TextTable table;
  std::vector<std::string> cols{"#"};
  std::vector<Align> aligns{Align::Right};
  for (const auto& p : params) {
    cols.push_back(p);
    aligns.push_back(Align::Left);
  }
  for (const auto& m : def.metrics.defs()) {
    cols.push_back(m.unit.empty() ? m.name : m.name + " (" + m.unit + ")");
    aligns.push_back(Align::Right);
  }
  table.set_columns(cols, aligns);

  for (const auto& t : trials) {
    std::vector<std::string> row;
    row.push_back(std::to_string(t.id + 1));  // paper numbering is 1-based
    for (const auto& p : params) {
      row.push_back(t.config.has(p) ? param_value_to_string(t.config.get(p))
                                    : "-");
    }
    for (const auto& m : def.metrics.defs()) {
      const auto it = t.metrics.find(m.name);
      row.push_back(it == t.metrics.end() ? "-" : fixed(it->second, 2));
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

std::string render_pareto_plot(const CaseStudyDef& def,
                               const std::vector<TrialRecord>& trials,
                               const std::string& metric_x,
                               const std::string& metric_y,
                               const std::string& title,
                               std::vector<std::size_t>* front_trial_ids) {
  const MetricDef& mx = def.metrics.def(metric_x);
  const MetricDef& my = def.metrics.def(metric_y);

  std::vector<std::vector<double>> points;
  std::vector<std::size_t> ids;
  for (const auto& t : trials) {
    if (t.budget_fraction < 1.0) continue;
    const auto ix = t.metrics.find(metric_x);
    const auto iy = t.metrics.find(metric_y);
    DARL_CHECK(ix != t.metrics.end() && iy != t.metrics.end(),
               "trial " << t.id << " lacks plotted metrics");
    points.push_back({ix->second, iy->second});
    ids.push_back(t.id);
  }
  const auto front = pareto_front(points, {mx.sense, my.sense});
  if (front_trial_ids != nullptr) {
    front_trial_ids->clear();
    for (std::size_t f : front) front_trial_ids->push_back(ids[f]);
  }

  std::vector<PlotPoint> plot;
  plot.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    PlotPoint p;
    p.x = points[i][0];
    p.y = points[i][1];
    p.label = std::to_string(ids[i] + 1);
    p.highlight = std::find(front.begin(), front.end(), i) != front.end();
    plot.push_back(p);
  }
  PlotOptions opts;
  opts.title = title;
  opts.x_label = mx.unit.empty() ? metric_x : metric_x + " (" + mx.unit + ")";
  opts.y_label = my.unit.empty() ? metric_y : metric_y + " (" + my.unit + ")";
  return render_scatter(plot, opts);
}

namespace {

constexpr const char* kPhaseKeys[] = {"CollectSeconds", "LearnSeconds",
                                      "SyncSeconds"};

bool has_phase_metrics(const TrialRecord& t) {
  for (const char* key : kPhaseKeys) {
    if (t.metrics.find(key) == t.metrics.end()) return false;
  }
  return true;
}

}  // namespace

std::string render_phase_breakdown(const std::vector<TrialRecord>& trials) {
  const bool any = std::any_of(trials.begin(), trials.end(), has_phase_metrics);
  if (!any) return "";

  TextTable table;
  table.set_columns({"#", "collect (s)", "learn (s)", "sync (s)", "total (s)",
                     "collect %"},
                    {Align::Right, Align::Right, Align::Right, Align::Right,
                     Align::Right, Align::Right});
  for (const auto& t : trials) {
    if (!has_phase_metrics(t)) continue;
    const double collect = t.metrics.at("CollectSeconds");
    const double learn = t.metrics.at("LearnSeconds");
    const double sync = t.metrics.at("SyncSeconds");
    const double total = collect + learn + sync;
    table.add_row({std::to_string(t.id + 1), fixed(collect, 3), fixed(learn, 3),
                   fixed(sync, 3), fixed(total, 3),
                   total > 0.0 ? fixed(100.0 * collect / total, 1) : "-"});
  }
  return "Per-trial phase breakdown (host seconds):\n" + table.render();
}

void write_trials_csv(std::ostream& out, const CaseStudyDef& def,
                      const std::vector<TrialRecord>& trials) {
  CsvWriter csv(out);
  std::vector<std::string> header{"id", "budget_fraction", "config"};
  for (const auto& m : def.metrics.defs()) header.push_back(m.name);
  csv.header(header);
  for (const auto& t : trials) {
    csv.begin_row();
    csv.integer(static_cast<long long>(t.id));
    csv.number(t.budget_fraction, 6);
    csv.field(t.config.describe());
    for (const auto& m : def.metrics.defs()) {
      const auto it = t.metrics.find(m.name);
      DARL_CHECK(it != t.metrics.end(), "trial missing metric '" << m.name << "'");
      csv.number(it->second, 12);
    }
    csv.end_row();
  }
}

LearningConfiguration parse_configuration(const ParamSpace& space,
                                          const std::string& description) {
  LearningConfiguration config;
  std::stringstream ss(description);
  std::string piece;
  while (std::getline(ss, piece, ',')) {
    // trim
    const auto b = piece.find_first_not_of(' ');
    const auto e = piece.find_last_not_of(' ');
    DARL_CHECK(b != std::string::npos, "empty configuration fragment");
    piece = piece.substr(b, e - b + 1);
    const auto eq = piece.find('=');
    DARL_CHECK(eq != std::string::npos, "malformed fragment '" << piece << "'");
    const std::string key = piece.substr(0, eq);
    const std::string val = piece.substr(eq + 1);
    const ParamDomain& dom = space.domain(key);
    if (dom.is_categorical()) {
      config.set(key, val);
    } else if (dom.is_integer()) {
      config.set(key, static_cast<std::int64_t>(std::stoll(val)));
    } else {
      config.set(key, std::stod(val));
    }
  }
  return config;
}

std::optional<std::vector<TrialRecord>> load_trials_csv(std::istream& in,
                                                        const CaseStudyDef& def) {
  std::string header_line;
  if (!std::getline(in, header_line)) return std::nullopt;
  std::string expected = "id,budget_fraction,config";
  for (const auto& m : def.metrics.defs()) expected += "," + m.name;
  if (header_line != expected) return std::nullopt;

  std::vector<TrialRecord> trials;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // Parse with quote awareness (the config field is quoted when it
    // contains commas — which it does for multi-parameter configs).
    std::vector<std::string> fields;
    std::string cur;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (quoted) {
        if (c == '"') {
          if (i + 1 < line.size() && line[i + 1] == '"') {
            cur += '"';
            ++i;
          } else {
            quoted = false;
          }
        } else {
          cur += c;
        }
      } else if (c == '"') {
        quoted = true;
      } else if (c == ',') {
        fields.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    fields.push_back(cur);
    if (fields.size() != 3 + def.metrics.size()) return std::nullopt;

    TrialRecord t;
    try {
      t.id = static_cast<std::size_t>(std::stoull(fields[0]));
      t.budget_fraction = std::stod(fields[1]);
      t.config = parse_configuration(def.space, fields[2]);
      for (std::size_t j = 0; j < def.metrics.size(); ++j) {
        t.metrics[def.metrics.defs()[j].name] = std::stod(fields[3 + j]);
      }
    } catch (const std::exception&) {
      return std::nullopt;
    }
    trials.push_back(std::move(t));
  }
  if (trials.empty()) return std::nullopt;
  return trials;
}

std::string write_markdown_report(const CaseStudyDef& def,
                                  const std::vector<TrialRecord>& trials,
                                  const MarkdownReportOptions& options) {
  std::ostringstream md;
  md << "# Decision analysis: " << def.name << "\n\n";
  md << trials.size() << " evaluated configurations, "
     << def.metrics.size() << " metrics (";
  for (std::size_t i = 0; i < def.metrics.size(); ++i) {
    if (i) md << ", ";
    md << def.metrics.defs()[i].name << " "
       << sense_name(def.metrics.defs()[i].sense);
  }
  md << ").\n\n";

  // --- campaign table.
  md << "## Evaluated configurations\n\n|#|";
  for (const auto& d : def.space.domains()) md << d.name() << "|";
  for (const auto& m : def.metrics.defs()) {
    md << m.name << (m.unit.empty() ? "" : " (" + m.unit + ")") << "|";
  }
  md << "\n|-|";
  for (std::size_t i = 0; i < def.space.size() + def.metrics.size(); ++i)
    md << "-|";
  md << "\n";
  for (const auto& t : trials) {
    md << "|" << (t.id + 1) << "|";
    for (const auto& d : def.space.domains()) {
      md << (t.config.has(d.name())
                 ? param_value_to_string(t.config.get(d.name()))
                 : "-")
         << "|";
    }
    for (const auto& m : def.metrics.defs()) {
      const auto it = t.metrics.find(m.name);
      md << (it == t.metrics.end() ? std::string("-") : fixed(it->second, 2))
         << "|";
    }
    md << "\n";
  }
  md << "\n";

  // --- phase-time breakdown (when the trials carry the diagnostics).
  if (std::any_of(trials.begin(), trials.end(), has_phase_metrics)) {
    md << "## Phase breakdown (host seconds)\n\n"
       << "|#|collect|learn|sync|total|\n|-|-|-|-|-|\n";
    for (const auto& t : trials) {
      if (!has_phase_metrics(t)) continue;
      const double collect = t.metrics.at("CollectSeconds");
      const double learn = t.metrics.at("LearnSeconds");
      const double sync = t.metrics.at("SyncSeconds");
      md << "|" << (t.id + 1) << "|" << fixed(collect, 3) << "|"
         << fixed(learn, 3) << "|" << fixed(sync, 3) << "|"
         << fixed(collect + learn + sync, 3) << "|\n";
    }
    md << "\n";
  }

  // --- Pareto-front sections.
  auto figures = options.figures;
  if (figures.empty()) {
    const auto& defs = def.metrics.defs();
    for (std::size_t i = 0; i + 1 < defs.size(); ++i) {
      figures.emplace_back(defs[i].name, defs[i + 1].name);
    }
    if (defs.size() > 2) figures.emplace_back(defs.back().name, defs[0].name);
  }
  for (const auto& [x, y] : figures) {
    std::vector<std::size_t> front;
    const std::string plot =
        render_pareto_plot(def, trials, x, y, y + " vs " + x, &front);
    md << "## Trade-off: " << y << " vs " << x << "\n\n";
    md << "Non-dominated solutions: ";
    for (std::size_t i = 0; i < front.size(); ++i) {
      if (i) md << ", ";
      md << "#" << (front[i] + 1);
    }
    md << "\n\n```\n" << plot << "```\n\n";
  }

  // --- stability section.
  if (options.include_stability && !trials.empty()) {
    std::vector<std::vector<double>> points;
    points.reserve(trials.size());
    for (const auto& t : trials) points.push_back(def.metrics.extract(t.metrics));
    StabilityOptions sopts;
    sopts.samples = options.stability_samples;
    sopts.relative_noise = options.stability_relative_noise;
    Rng rng(options.stability_seed);
    const StabilityResult st = front_stability(points, def.metrics, sopts, rng);
    md << "## Front stability (" << sopts.samples << " resamples, "
       << fixed(100.0 * sopts.relative_noise, 0) << "% relative noise)\n\n"
       << "|#|front membership|\n|-|-|\n";
    for (std::size_t i = 0; i < trials.size(); ++i) {
      md << "|" << (trials[i].id + 1) << "|"
         << fixed(100.0 * st.membership[i], 1) << "%"
         << (st.membership[i] >= 0.5 ? " **robust**" : "") << "|\n";
    }
    md << "\n";
  }
  return md.str();
}

}  // namespace darl::core
