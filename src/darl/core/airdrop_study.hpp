// darl/core/airdrop_study.hpp
//
// Application of the methodology to the Airdrop Package Delivery Simulator
// (paper §V): the parameter space of the study (Runge-Kutta order,
// framework, algorithm, nodes, cores per node), the case-study evaluation
// function that trains a model through a framework backend and reports
// Reward / Computation Time / Power Consumption, and the reconstructed
// 18-configuration Table-I campaign with CSV caching (training campaigns
// are expensive; every bench that needs Table-I data shares one cache).

#pragma once

#include <string>

#include "darl/airdrop/airdrop_env.hpp"
#include "darl/core/report.hpp"
#include "darl/core/study.hpp"
#include "darl/frameworks/distributed.hpp"

namespace darl::core {

/// Scaling knobs mapping the paper's campaign onto the host budget.
struct AirdropStudyOptions {
  /// Training timesteps per trial. The paper trains for 200,000; reported
  /// times/energies are rescaled to paper scale by (200000 / this).
  std::size_t total_timesteps = 16384;

  /// Environment template (§V-a: wind disabled, drop altitude interval in
  /// its basic configuration — lowered here so scaled-down training sees
  /// enough episodes; see EXPERIMENTS.md).
  airdrop::AirdropConfig base_env;

  std::size_t eval_episodes = 50;

  /// Independent training repetitions averaged into one trial's metrics.
  /// One PPO run at the scaled-down budget has a reward standard deviation
  /// of ~0.05; averaging two halves it, keeping the campaign's orderings
  /// stable across re-runs (the paper ran each configuration once on real
  /// hardware at 12x our training budget).
  std::size_t seeds_per_trial = 2;

  /// Iteration sizing forwarded to the backends.
  std::size_t train_batch_total = 1024;
  std::size_t steps_per_env = 256;

  /// Multi-process execution (DESIGN.md §17). When `distributed.enabled`
  /// is set, RLlib multi-node trials run through DistributedRllibBackend
  /// — real actor processes over darl/net sockets — instead of the
  /// in-process thread pool. Metrics are byte-identical between the two
  /// paths; this trades host wall time for genuine process isolation.
  frameworks::DistributedOptions distributed;

  AirdropStudyOptions() {
    base_env.wind_enabled = false;
    base_env.gusts_enabled = false;
    base_env.altitude_min = 30.0;
    base_env.altitude_max = 300.0;
  }
};

/// Parameter names used by the airdrop study.
inline constexpr const char* kParamRkOrder = "rk_order";
inline constexpr const char* kParamFramework = "framework";
inline constexpr const char* kParamAlgorithm = "algorithm";
inline constexpr const char* kParamNodes = "nodes";
inline constexpr const char* kParamCores = "cores_per_node";

/// The study's parameter space (§V-b): rk_order in {3,5,8} (environment),
/// framework in {RLlib, StableBaselines, TF-Agents} and algorithm in
/// {PPO, SAC} (algorithm), nodes in {1,2} and cores_per_node in {2,4}
/// (system).
ParamSpace airdrop_param_space();

/// Full case-study definition (space + paper metrics + evaluation
/// function). The evaluation trains through the configured framework
/// backend; `nodes` is clamped to 1 for the single-node frameworks
/// (Stable Baselines, TF-Agents), mirroring their real capability.
CaseStudyDef make_airdrop_case_study(const AirdropStudyOptions& options = {});

/// The reconstructed Table-I campaign: 18 configurations consistent with
/// every constraint the paper's prose states about its (OCR-damaged)
/// table. See EXPERIMENTS.md for the reconstruction notes.
std::vector<LearningConfiguration> paper_table1_configs();

/// Run the Table-I campaign, or load it from `cache_path` when a valid
/// cache exists (written on first run). The cache is keyed by the study
/// seed and the campaign's configuration digest: a cache written under a
/// different seed or config list is treated as stale and re-run rather
/// than silently returned. `study_options.seed` feeds per-trial seeds;
/// fault-tolerance knobs (retries, timeout, failure policy) apply too.
std::vector<TrialRecord> run_table1_campaign(
    const AirdropStudyOptions& options, const std::string& cache_path,
    const StudyOptions& study_options = {.seed = 42});

/// Factor converting executed sim-seconds to paper-scale seconds.
double paper_time_scale(const AirdropStudyOptions& options);

}  // namespace darl::core
