#include "darl/core/explorer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"

namespace darl::core {

GridSearch::GridSearch(ParamSpace space, std::size_t real_grid_points)
    : space_(std::move(space)), real_grid_points_(real_grid_points) {
  DARL_CHECK(real_grid_points >= 2, "real grid needs at least 2 points");
  total_ = space_.grid_size(real_grid_points_);
}

std::optional<Proposal> GridSearch::ask() {
  // Skip grid points that violate the space's feasibility constraints,
  // materializing each candidate point once.
  while (next_ < total_) {
    LearningConfiguration config = space_.grid_point(next_, real_grid_points_);
    if (space_.satisfies_constraints(config)) {
      Proposal p;
      p.trial_id = next_;
      p.config = std::move(config);
      ++next_;
      return p;
    }
    ++next_;
  }
  return std::nullopt;
}

void GridSearch::tell(std::size_t trial_id, const MetricValues& metrics) {
  (void)trial_id;
  (void)metrics;  // exhaustive search ignores feedback
}

RandomSearch::RandomSearch(ParamSpace space, std::size_t n_trials,
                           std::uint64_t seed)
    : space_(std::move(space)),
      n_trials_(n_trials),
      rng_(std::make_unique<Rng>(seed)) {
  DARL_CHECK(n_trials > 0, "RandomSearch needs at least one trial");
  DARL_CHECK(space_.size() > 0, "RandomSearch over an empty space");
}

std::optional<Proposal> RandomSearch::ask() {
  if (next_ >= n_trials_) return std::nullopt;
  LearningConfiguration config = space_.sample(*rng_);
  // Bounded re-draw to avoid evaluating identical configurations twice
  // (small discrete spaces may still repeat after the attempts run out).
  for (int attempt = 0; attempt < 16; ++attempt) {
    if (seen_keys_.count(config.cache_key()) == 0) break;
    config = space_.sample(*rng_);
  }
  seen_keys_.insert(config.cache_key());
  Proposal p;
  p.trial_id = next_;
  p.config = std::move(config);
  ++next_;
  return p;
}

void RandomSearch::tell(std::size_t trial_id, const MetricValues& metrics) {
  (void)trial_id;
  (void)metrics;  // uninformed sampling ignores feedback
}

FixedListSearch::FixedListSearch(std::vector<LearningConfiguration> configs)
    : configs_(std::move(configs)) {
  DARL_CHECK(!configs_.empty(), "FixedListSearch needs at least one config");
}

std::optional<Proposal> FixedListSearch::ask() {
  if (next_ >= configs_.size()) return std::nullopt;
  Proposal p;
  p.trial_id = next_;
  p.config = configs_[next_];
  ++next_;
  return p;
}

void FixedListSearch::tell(std::size_t trial_id, const MetricValues& metrics) {
  (void)trial_id;
  (void)metrics;
}

SuccessiveHalving::SuccessiveHalving(ParamSpace space, MetricDef objective,
                                     std::size_t initial_trials, double eta,
                                     double min_budget_fraction,
                                     std::uint64_t seed)
    : space_(std::move(space)),
      objective_(std::move(objective)),
      eta_(eta),
      rng_(std::make_unique<Rng>(seed)) {
  DARL_CHECK(initial_trials >= 2, "successive halving needs >= 2 trials");
  DARL_CHECK(eta > 1.0, "eta must exceed 1");
  DARL_CHECK(min_budget_fraction > 0.0 && min_budget_fraction <= 1.0,
             "min budget fraction out of (0,1]");
  budget_ = min_budget_fraction;
  current_.resize(initial_trials);
  for (auto& e : current_) e.config = space_.sample(*rng_);
}

std::optional<Proposal> SuccessiveHalving::ask() {
  if (done_) return std::nullopt;
  if (next_in_rung_ >= current_.size()) return std::nullopt;  // awaiting tells
  RungEntry& e = current_[next_in_rung_];
  e.trial_id = next_trial_id_++;
  e.asked = true;
  ++next_in_rung_;
  Proposal p;
  p.trial_id = e.trial_id;
  p.config = e.config;
  p.budget_fraction = budget_;
  return p;
}

void SuccessiveHalving::tell(std::size_t trial_id, const MetricValues& metrics) {
  const auto it = metrics.find(objective_.name);
  DARL_CHECK(it != metrics.end(),
             "trial did not report objective '" << objective_.name << "'");
  resolve(trial_id,
          objective_.sense == Sense::Maximize ? it->second : -it->second);
}

void SuccessiveHalving::tell_failure(std::size_t trial_id) {
  // The failed configuration competes with the worst possible score, so
  // the rung still completes and the config is pruned on the next cut.
  resolve(trial_id, -std::numeric_limits<double>::infinity());
}

void SuccessiveHalving::resolve(std::size_t trial_id, double score) {
  bool found = false;
  for (auto& e : current_) {
    if (e.asked && e.trial_id == trial_id && !e.score.has_value()) {
      e.score = score;
      found = true;
      break;
    }
  }
  DARL_CHECK(found, "tell() for unknown trial id " << trial_id);
  const bool rung_complete =
      next_in_rung_ == current_.size() &&
      std::all_of(current_.begin(), current_.end(),
                  [](const RungEntry& e) { return e.score.has_value(); });
  if (rung_complete) build_next_rung();
}

void SuccessiveHalving::build_next_rung() {
  if (budget_ >= 1.0 || current_.size() <= 1) {
    done_ = true;
    return;
  }
  // Keep the best ceil(n/eta) configurations (higher internal score wins).
  // stable_sort: entries arrive in deterministic proposal order, so equal
  // scores must not let the promotion set depend on the sort's whims.
  std::vector<RungEntry> sorted = current_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const RungEntry& a, const RungEntry& b) {
                     return a.score.value() > b.score.value();
                   });
  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(static_cast<double>(sorted.size()) / eta_)));
  sorted.resize(keep);
  for (auto& e : sorted) {
    e.score.reset();
    e.trial_id = 0;
    e.asked = false;
  }
  current_ = std::move(sorted);
  budget_ = std::min(1.0, budget_ * eta_);
  ++rung_;
  next_in_rung_ = 0;
}

}  // namespace darl::core
