#include "darl/core/tpe.hpp"

#include <algorithm>
#include <cmath>

#include "darl/common/error.hpp"

namespace darl::core {
namespace {

constexpr double kLogSqrt2Pi = 0.9189385332046727;  // log(sqrt(2*pi))

/// Work in log space for log-scale real domains.
struct RealTransform {
  double lo = 0.0, hi = 1.0;
  bool log_scale = false;

  double fwd(double x) const { return log_scale ? std::log(x) : x; }
  double inv(double t) const { return log_scale ? std::exp(t) : t; }
};

RealTransform transform_of(const ParamDomain& dom) {
  RealTransform tr;
  const auto [lo, hi] = dom.real_bounds();
  tr.log_scale = dom.real_log_scale();
  tr.lo = tr.log_scale ? std::log(lo) : lo;
  tr.hi = tr.log_scale ? std::log(hi) : hi;
  return tr;
}

}  // namespace

TpeSearch::TpeSearch(ParamSpace space, MetricDef objective, TpeOptions options,
                     std::uint64_t seed)
    : space_(std::move(space)),
      objective_(std::move(objective)),
      options_(options),
      rng_(seed) {
  DARL_CHECK(space_.size() > 0, "TPE over an empty space");
  DARL_CHECK(options_.n_trials > 0, "TPE needs a positive trial budget");
  DARL_CHECK(options_.n_startup >= 2, "TPE needs >= 2 startup trials");
  DARL_CHECK(options_.gamma > 0.0 && options_.gamma < 1.0,
             "TPE gamma out of (0,1)");
  DARL_CHECK(options_.n_candidates > 0, "TPE needs candidates");
}

void TpeSearch::split(std::vector<const Observation*>& good,
                      std::vector<const Observation*>& rest) const {
  std::vector<const Observation*> sorted;
  sorted.reserve(history_.size());
  for (const auto& o : history_) sorted.push_back(&o);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Observation* a, const Observation* b) {
                     return a->score > b->score;
                   });
  const std::size_t n_good = std::clamp<std::size_t>(
      static_cast<std::size_t>(
          std::ceil(options_.gamma * static_cast<double>(sorted.size()))),
      1, sorted.size() - 1);
  good.assign(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(n_good));
  rest.assign(sorted.begin() + static_cast<std::ptrdiff_t>(n_good), sorted.end());
}

double TpeSearch::dim_log_density(
    const ParamDomain& dom, const ParamValue& v,
    const std::vector<const Observation*>& group) const {
  const std::size_t n = group.size();
  if (dom.cardinality().has_value()) {
    // Categorical / integer: smoothed empirical frequencies.
    const std::size_t k = *dom.cardinality();
    double count = 0.0;
    for (const Observation* o : group) {
      if (param_value_equal(o->config.get(dom.name()), v)) count += 1.0;
    }
    const double p = (count + options_.categorical_prior) /
                     (static_cast<double>(n) +
                      options_.categorical_prior * static_cast<double>(k));
    return std::log(p);
  }

  // Real: Parzen mixture of Gaussians plus a uniform prior component.
  const RealTransform tr = transform_of(dom);
  const double span = tr.hi - tr.lo;
  const double bw =
      span * std::max(options_.min_bandwidth_fraction,
                      1.0 / std::sqrt(static_cast<double>(n) + 1.0));
  const double x = tr.fwd(std::get<double>(v));

  double density = 1.0 / span;  // the uniform component
  for (const Observation* o : group) {
    const double xi = tr.fwd(std::get<double>(o->config.get(dom.name())));
    const double z = (x - xi) / bw;
    density += std::exp(-0.5 * z * z - kLogSqrt2Pi) / bw;
  }
  density /= static_cast<double>(n + 1);
  return std::log(std::max(density, 1e-300));
}

ParamValue TpeSearch::dim_sample(const ParamDomain& dom,
                                 const std::vector<const Observation*>& group) {
  const std::size_t n = group.size();
  if (dom.cardinality().has_value()) {
    const std::size_t k = *dom.cardinality();
    std::vector<double> weights(k, options_.categorical_prior);
    for (const Observation* o : group) {
      const ParamValue& ov = o->config.get(dom.name());
      for (std::size_t i = 0; i < k; ++i) {
        if (param_value_equal(dom.grid_value(i, 2), ov)) {
          weights[i] += 1.0;
          break;
        }
      }
    }
    return dom.grid_value(rng_.categorical(weights), 2);
  }

  const RealTransform tr = transform_of(dom);
  const double span = tr.hi - tr.lo;
  const double bw =
      span * std::max(options_.min_bandwidth_fraction,
                      1.0 / std::sqrt(static_cast<double>(n) + 1.0));
  // With probability 1/(n+1) draw from the uniform prior component.
  double t;
  if (n == 0 || rng_.uniform() < 1.0 / static_cast<double>(n + 1)) {
    t = rng_.uniform(tr.lo, tr.hi);
  } else {
    const Observation* o = group[rng_.index(n)];
    const double xi = tr.fwd(std::get<double>(o->config.get(dom.name())));
    t = std::clamp(rng_.normal(xi, bw), tr.lo, tr.hi);
  }
  // Clamp against round-off at the domain edges (exp(log(hi)) can exceed
  // hi by one ulp).
  const auto [lo, hi] = dom.real_bounds();
  return std::clamp(tr.inv(t), lo, hi);
}

double TpeSearch::log_density(const LearningConfiguration& config,
                              const std::vector<const Observation*>& group) const {
  double lp = 0.0;
  for (const auto& dom : space_.domains()) {
    lp += dim_log_density(dom, config.get(dom.name()), group);
  }
  return lp;
}

LearningConfiguration TpeSearch::sample_from_model(
    const std::vector<const Observation*>& good) {
  // Rejection-sample against the space's feasibility constraints; fall
  // back to a uniform feasible draw if the model keeps proposing
  // infeasible combinations.
  for (int attempt = 0; attempt < 32; ++attempt) {
    LearningConfiguration config;
    for (const auto& dom : space_.domains()) {
      config.set(dom.name(), dim_sample(dom, good));
    }
    if (space_.satisfies_constraints(config)) return config;
  }
  return space_.sample(rng_);
}

std::optional<Proposal> TpeSearch::ask() {
  if (asked_ >= options_.n_trials) return std::nullopt;

  LearningConfiguration config;
  if (history_.size() < options_.n_startup) {
    config = space_.sample(rng_);
  } else {
    std::vector<const Observation*> good, rest;
    split(good, rest);
    double best_ei = -std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < options_.n_candidates; ++c) {
      LearningConfiguration cand = sample_from_model(good);
      const double ei = log_density(cand, good) - log_density(cand, rest);
      if (ei > best_ei) {
        best_ei = ei;
        config = std::move(cand);
      }
    }
  }

  Proposal p;
  p.trial_id = asked_;
  p.config = config;
  pending_.emplace(asked_, std::move(config));
  ++asked_;
  return p;
}

void TpeSearch::tell(std::size_t trial_id, const MetricValues& metrics) {
  const auto it = pending_.find(trial_id);
  DARL_CHECK(it != pending_.end(), "tell() for unknown TPE trial " << trial_id);
  const auto mit = metrics.find(objective_.name);
  DARL_CHECK(mit != metrics.end(),
             "trial did not report objective '" << objective_.name << "'");
  Observation o;
  o.config = std::move(it->second);
  o.score = objective_.sense == Sense::Maximize ? mit->second : -mit->second;
  history_.push_back(std::move(o));
  pending_.erase(it);
}

void TpeSearch::tell_failure(std::size_t trial_id) {
  // Drop the outstanding proposal without feeding the model: a failed
  // trial yields no objective value, but the ask() budget stays spent.
  const auto it = pending_.find(trial_id);
  DARL_CHECK(it != pending_.end(),
             "tell_failure() for unknown TPE trial " << trial_id);
  pending_.erase(it);
}

}  // namespace darl::core
