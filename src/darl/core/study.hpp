// darl/core/study.hpp
//
// The study runner: wires the five methodology stages together. A
// CaseStudyDef supplies the case study (stage a) as an evaluation function,
// the parameter space (stage b) and the metric set (stage d); the caller
// chooses an ExploratoryMethod (stage c); Study::run() executes the
// campaign and the ranking methods (stage e) read the trial table.

#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "darl/core/explorer.hpp"
#include "darl/core/metric.hpp"
#include "darl/core/param.hpp"

namespace darl::core {

/// Stage (a): the case study, reduced to what the methodology needs — an
/// evaluation function mapping (configuration, budget fraction, seed) to
/// the declared metrics. For the airdrop use case the function trains a
/// model through a framework backend; unit tests use synthetic functions.
struct CaseStudyDef {
  std::string name;
  ParamSpace space;
  MetricSet metrics;

  using EvaluateFn = std::function<MetricValues(
      const LearningConfiguration& config, double budget_fraction,
      std::uint64_t seed)>;
  EvaluateFn evaluate;
};

/// Outcome of one trial. A trial is Failed when its evaluation threw on
/// every attempt, TimedOut when the last attempt exceeded the per-trial
/// wall-clock timeout.
enum class TrialStatus { Ok, Failed, TimedOut };

const char* trial_status_name(TrialStatus status);
/// Inverse of trial_status_name; nullopt for unknown strings.
std::optional<TrialStatus> trial_status_from_name(const std::string& name);

/// One executed trial.
struct TrialRecord {
  std::size_t id = 0;
  LearningConfiguration config;
  double budget_fraction = 1.0;
  MetricValues metrics;
  double wall_seconds = 0.0;
  TrialStatus status = TrialStatus::Ok;
  /// Human-readable cause of the last failed attempt ("" when Ok).
  std::string error;
  /// Evaluation attempts spent on this trial (1 = succeeded first try).
  std::size_t attempts = 1;

  bool ok() const { return status == TrialStatus::Ok; }
};

/// What Study::run does when a trial exhausts its retry budget.
enum class FailurePolicy {
  /// Record the failure, then rethrow the trial's exception out of run().
  /// Completed trials (and the failed record) stay in trials().
  Abort,
  /// Record the failure, notify the explorer via tell_failure, continue.
  Skip,
};

/// Study options.
struct StudyOptions {
  std::uint64_t seed = 1;
  bool log_progress = true;
  /// Hard cap on trials regardless of the exploratory method (0 = none).
  std::size_t max_trials = 0;
  /// Evaluate up to this many trials concurrently (each on its own
  /// thread). Results and explorer feedback are applied in proposal order,
  /// so a study is deterministic regardless of this setting; the
  /// evaluation function must be thread-safe for values > 1 (the airdrop
  /// case study is: every trial builds its own backend/envs/learner).
  std::size_t parallel_trials = 1;
  /// Re-evaluate a throwing/timed-out trial up to this many extra times.
  /// Retried attempts run with a reseeded attempt stream (attempt 0 keeps
  /// the historical per-trial seed, so fault-free studies are unchanged).
  std::size_t max_retries = 0;
  /// Sleep this long before retry k (scaled linearly: k * backoff). 0
  /// retries immediately.
  double retry_backoff_seconds = 0.0;
  /// Per-attempt wall-clock timeout in seconds (0 = none). A timed-out
  /// evaluation is abandoned on a detached watchdog thread and the attempt
  /// counts as failed; the evaluation function must therefore not mutate
  /// shared state if timeouts are enabled. Every abandonment bumps the
  /// `study.watchdog_detached` obs counter, so leaked runaway trials are
  /// visible in metrics snapshots.
  double trial_timeout_seconds = 0.0;
  /// Policy applied once a trial's retry budget is exhausted.
  FailurePolicy on_trial_failure = FailurePolicy::Abort;
};

/// Executes an exploration campaign over a case study.
class Study {
 public:
  Study(CaseStudyDef def, std::unique_ptr<ExploratoryMethod> explorer,
        StudyOptions options = {});

  /// Run until the exploratory method is exhausted (or max_trials). With
  /// FailurePolicy::Abort (the default) the first permanently failed trial
  /// rethrows its exception after being recorded; with FailurePolicy::Skip
  /// run() never throws for evaluation failures and the campaign's
  /// surviving trials stay analyzable.
  void run();

  const std::vector<TrialRecord>& trials() const { return trials_; }
  const CaseStudyDef& definition() const { return def_; }

  /// Number of recorded trials whose status is not Ok.
  std::size_t failed_trials() const;

  /// Metric table of all successful trials (rows in trial order, columns
  /// in metric declaration order). Failed trials carry no metrics and are
  /// skipped.
  std::vector<std::vector<double>> metric_table() const;

  /// Metric table restricted to successful full-budget trials, with the
  /// original trial indices returned through `indices`.
  std::vector<std::vector<double>> full_budget_metric_table(
      std::vector<std::size_t>& indices) const;

  /// Trial indices on the first Pareto front over the given metric subset
  /// (all declared metrics when `metric_names` is empty). Only successful
  /// full-budget trials participate.
  std::vector<std::size_t> pareto_trials(
      const std::vector<std::string>& metric_names = {}) const;

 private:
  CaseStudyDef def_;
  std::unique_ptr<ExploratoryMethod> explorer_;
  StudyOptions options_;
  std::vector<TrialRecord> trials_;
};

}  // namespace darl::core
