// darl/core/study.hpp
//
// The study runner: wires the five methodology stages together. A
// CaseStudyDef supplies the case study (stage a) as an evaluation function,
// the parameter space (stage b) and the metric set (stage d); the caller
// chooses an ExploratoryMethod (stage c); Study::run() executes the
// campaign and the ranking methods (stage e) read the trial table.

#pragma once

#include <functional>
#include <memory>

#include "darl/core/explorer.hpp"
#include "darl/core/metric.hpp"
#include "darl/core/param.hpp"

namespace darl::core {

/// Stage (a): the case study, reduced to what the methodology needs — an
/// evaluation function mapping (configuration, budget fraction, seed) to
/// the declared metrics. For the airdrop use case the function trains a
/// model through a framework backend; unit tests use synthetic functions.
struct CaseStudyDef {
  std::string name;
  ParamSpace space;
  MetricSet metrics;

  using EvaluateFn = std::function<MetricValues(
      const LearningConfiguration& config, double budget_fraction,
      std::uint64_t seed)>;
  EvaluateFn evaluate;
};

/// One executed trial.
struct TrialRecord {
  std::size_t id = 0;
  LearningConfiguration config;
  double budget_fraction = 1.0;
  MetricValues metrics;
  double wall_seconds = 0.0;
};

/// Study options.
struct StudyOptions {
  std::uint64_t seed = 1;
  bool log_progress = true;
  /// Hard cap on trials regardless of the exploratory method (0 = none).
  std::size_t max_trials = 0;
  /// Evaluate up to this many trials concurrently (each on its own
  /// thread). Results and explorer feedback are applied in proposal order,
  /// so a study is deterministic regardless of this setting; the
  /// evaluation function must be thread-safe for values > 1 (the airdrop
  /// case study is: every trial builds its own backend/envs/learner).
  std::size_t parallel_trials = 1;
};

/// Executes an exploration campaign over a case study.
class Study {
 public:
  Study(CaseStudyDef def, std::unique_ptr<ExploratoryMethod> explorer,
        StudyOptions options = {});

  /// Run until the exploratory method is exhausted (or max_trials).
  void run();

  const std::vector<TrialRecord>& trials() const { return trials_; }
  const CaseStudyDef& definition() const { return def_; }

  /// Metric table of all trials (rows in trial order, columns in metric
  /// declaration order).
  std::vector<std::vector<double>> metric_table() const;

  /// Metric table restricted to full-budget trials, with the original
  /// trial indices returned through `indices`.
  std::vector<std::vector<double>> full_budget_metric_table(
      std::vector<std::size_t>& indices) const;

  /// Trial indices on the first Pareto front over the given metric subset
  /// (all declared metrics when `metric_names` is empty). Only full-budget
  /// trials participate.
  std::vector<std::size_t> pareto_trials(
      const std::vector<std::string>& metric_names = {}) const;

 private:
  CaseStudyDef def_;
  std::unique_ptr<ExploratoryMethod> explorer_;
  StudyOptions options_;
  std::vector<TrialRecord> trials_;
};

}  // namespace darl::core
