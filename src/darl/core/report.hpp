// darl/core/report.hpp
//
// Presentation of study results: paper-style configuration/result tables
// (Table I), ASCII Pareto-front plots (Figures 4-6), CSV persistence and a
// loader so expensive campaigns can be cached and re-analyzed.

#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "darl/core/study.hpp"

namespace darl::core {

/// Render a Table-I-style table: one row per trial with the configuration
/// parameters (columns in `param_order`; all space parameters when empty)
/// followed by the metrics. Trial ids are printed 1-based like the paper.
std::string render_trial_table(const CaseStudyDef& def,
                               const std::vector<TrialRecord>& trials,
                               const std::vector<std::string>& param_order = {});

/// Render one Pareto front over a metric pair as an ASCII scatter plot with
/// 1-based trial labels; non-dominated trials are highlighted. Only
/// full-budget trials are plotted. Also returns the front through
/// `front_trial_ids` when non-null.
std::string render_pareto_plot(const CaseStudyDef& def,
                               const std::vector<TrialRecord>& trials,
                               const std::string& metric_x,
                               const std::string& metric_y,
                               const std::string& title,
                               std::vector<std::size_t>* front_trial_ids = nullptr);

/// Render a failure summary table (trial id, status, attempts, error) for
/// every non-Ok trial; returns "" when the campaign had no failures.
std::string render_failure_summary(const std::vector<TrialRecord>& trials);

/// Render a per-trial phase-time breakdown table (host seconds spent in the
/// backends' collect / learn / sync phases, plus the trial total). Reads the
/// "CollectSeconds"/"LearnSeconds"/"SyncSeconds" diagnostics the airdrop
/// evaluation attaches beside the declared metrics; returns "" when no trial
/// carries them (e.g. a campaign loaded from a pre-observability cache).
std::string render_phase_breakdown(const std::vector<TrialRecord>& trials);

/// Write trials to CSV: id, budget_fraction, status, attempts, error,
/// config (describe string), one column per declared metric. Metric values
/// are written with max_digits10 significant digits so a load is
/// bit-exact; failed trials leave their missing metric cells empty.
void write_trials_csv(std::ostream& out, const CaseStudyDef& def,
                      const std::vector<TrialRecord>& trials);

/// Load trials back from CSV written by write_trials_csv. Configuration
/// values are re-typed through the space's domains. Returns nullopt when
/// the header does not match the case study (stale cache).
std::optional<std::vector<TrialRecord>> load_trials_csv(std::istream& in,
                                                        const CaseStudyDef& def);

/// Identity of a campaign cache: the study seed plus a digest of the
/// configurations the campaign proposes. A cache written under a different
/// key is stale — loading it would silently answer a different question
/// (e.g. `--seed 2` returning seed-1 results).
struct CampaignCacheKey {
  std::uint64_t seed = 0;
  /// Digest of the campaign's configuration list (config_list_digest).
  std::string config_digest;
};

/// Stable hex digest over a configuration list's cache keys.
std::string config_list_digest(
    const std::vector<LearningConfiguration>& configs);

/// write_trials_csv preceded by a `# darl-campaign-cache ...` meta line
/// embedding `key`, so loads can reject stale caches.
void write_campaign_cache(std::ostream& out, const CaseStudyDef& def,
                          const std::vector<TrialRecord>& trials,
                          const CampaignCacheKey& key);

/// Load a cache written by write_campaign_cache. Returns nullopt when the
/// meta line is missing or its seed/digest disagree with `key` (stale), or
/// when the trial rows fail to parse.
std::optional<std::vector<TrialRecord>> load_campaign_cache(
    std::istream& in, const CaseStudyDef& def, const CampaignCacheKey& key);

/// Parse a "k=v, k=v" configuration description using the space for types.
LearningConfiguration parse_configuration(const ParamSpace& space,
                                          const std::string& description);

/// Options for write_markdown_report.
struct MarkdownReportOptions {
  /// Metric pairs to present as Pareto-front sections; all consecutive
  /// declared-metric pairs when empty.
  std::vector<std::pair<std::string, std::string>> figures;
  /// Include the front-stability section (resampling under noise).
  bool include_stability = true;
  std::size_t stability_samples = 2000;
  double stability_relative_noise = 0.05;
  std::uint64_t stability_seed = 7;
};

/// Render a complete decision-analysis report as GitHub-flavoured Markdown:
/// campaign table, per-figure non-dominated sets with plots, and (optionally)
/// front-membership stability — the hand-off document the methodology's
/// final stage produces for the project team.
std::string write_markdown_report(const CaseStudyDef& def,
                                  const std::vector<TrialRecord>& trials,
                                  const MarkdownReportOptions& options = {});

}  // namespace darl::core
