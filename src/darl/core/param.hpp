// darl/core/param.hpp
//
// Stage (b) of the methodology: learning configurations. A ParamSpace
// declares the parameters under study — categorical choices (framework,
// algorithm), integer ranges (nodes, cores) and real intervals (learning
// rate) — optionally tagged by the paper's taxonomy (algorithm- vs system-
// vs environment-dependent). A LearningConfiguration is one assignment.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace darl {
class Rng;
}

namespace darl::core {

/// The paper's parameter taxonomy (§III-B b).
enum class ParamCategory { Algorithm, System, Environment };

const char* param_category_name(ParamCategory c);

/// One parameter value: a categorical label, an integer or a real.
using ParamValue = std::variant<std::string, std::int64_t, double>;

/// Human-readable rendering of a ParamValue.
std::string param_value_to_string(const ParamValue& v);

/// Equality that treats variant alternatives strictly.
bool param_value_equal(const ParamValue& a, const ParamValue& b);

/// Domain of one parameter.
class ParamDomain {
 public:
  /// Categorical domain over the given labels (non-empty, unique).
  static ParamDomain categorical(std::string name,
                                 std::vector<std::string> choices,
                                 ParamCategory category);

  /// Integer range [lo, hi] with the given step (> 0, hi reachable or not).
  static ParamDomain integer_range(std::string name, std::int64_t lo,
                                   std::int64_t hi, std::int64_t step,
                                   ParamCategory category);

  /// Explicit integer choice set (e.g. Runge-Kutta order in {3, 5, 8}).
  static ParamDomain integer_set(std::string name,
                                 std::vector<std::int64_t> choices,
                                 ParamCategory category);

  /// Real interval [lo, hi]; `log_scale` samples uniformly in log space.
  static ParamDomain real_range(std::string name, double lo, double hi,
                                bool log_scale, ParamCategory category);

  const std::string& name() const { return name_; }
  ParamCategory category() const { return category_; }

  bool is_categorical() const;
  bool is_integer() const;
  bool is_real() const;

  /// Number of grid points: categorical size, integer-step count, or
  /// nullopt for a (continuous) real domain.
  std::optional<std::size_t> cardinality() const;

  /// The i-th grid value (for grid search). Real domains discretize into
  /// `real_grid_points` equally spaced values (log-spaced if log_scale).
  ParamValue grid_value(std::size_t i, std::size_t real_grid_points) const;

  /// Uniform random value from the domain.
  ParamValue sample(Rng& rng) const;

  /// Bounds of a real domain as {lo, hi}; throws unless is_real().
  std::pair<double, double> real_bounds() const;

  /// Whether a real domain samples in log space; throws unless is_real().
  bool real_log_scale() const;

  /// True when `v` has the right type and lies in the domain.
  bool contains(const ParamValue& v) const;

 private:
  ParamDomain() = default;

  struct Categorical {
    std::vector<std::string> choices;
  };
  struct IntRange {
    std::int64_t lo = 0, hi = 0, step = 1;
  };
  struct IntSet {
    std::vector<std::int64_t> choices;
  };
  struct RealRange {
    double lo = 0.0, hi = 1.0;
    bool log_scale = false;
  };

  std::string name_;
  ParamCategory category_ = ParamCategory::Algorithm;
  std::variant<Categorical, IntRange, IntSet, RealRange> domain_;
};

/// One assignment of values to (a subset of) a ParamSpace's parameters.
class LearningConfiguration {
 public:
  void set(const std::string& name, ParamValue value);

  bool has(const std::string& name) const;

  /// Typed accessors; throw darl::Error on missing key or wrong type.
  const std::string& get_categorical(const std::string& name) const;
  std::int64_t get_integer(const std::string& name) const;
  double get_real(const std::string& name) const;
  const ParamValue& get(const std::string& name) const;

  const std::map<std::string, ParamValue>& values() const { return values_; }

  /// "name=value, name=value, ..." in key order.
  std::string describe() const;

  /// Stable content key for caching/dedup.
  std::string cache_key() const { return describe(); }

  bool operator==(const LearningConfiguration& other) const;

 private:
  std::map<std::string, ParamValue> values_;
};

/// Feasibility predicate over full configurations (e.g. "Stable Baselines
/// requires nodes == 1").
struct Constraint {
  std::function<bool(const LearningConfiguration&)> predicate;
  std::string description;
};

/// The ordered set of parameters a study explores, plus feasibility
/// constraints coupling them.
class ParamSpace {
 public:
  /// Add a parameter; names must be unique.
  void add(ParamDomain domain);

  /// Add a feasibility constraint. sample() rejection-samples against
  /// constraints; validate() enforces them; grid-based explorers skip
  /// infeasible points.
  void add_constraint(std::function<bool(const LearningConfiguration&)> predicate,
                      std::string description);

  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// True when every constraint accepts `config` (domains not checked).
  bool satisfies_constraints(const LearningConfiguration& config) const;

  const std::vector<ParamDomain>& domains() const { return domains_; }
  std::size_t size() const { return domains_.size(); }
  const ParamDomain& domain(const std::string& name) const;

  /// Full-grid cardinality, with real domains counted as
  /// `real_grid_points` values. Throws if the space is empty.
  std::size_t grid_size(std::size_t real_grid_points) const;

  /// The i-th point of the full grid (mixed-radix decoding of i).
  LearningConfiguration grid_point(std::size_t index,
                                   std::size_t real_grid_points) const;

  /// Uniform random configuration over the feasible region
  /// (rejection-samples against constraints; throws darl::Error when no
  /// feasible point is found within an attempt budget).
  LearningConfiguration sample(Rng& rng) const;

  /// Validate that `config` assigns an in-domain value to every parameter
  /// and satisfies every constraint. Throws darl::InvalidArgument otherwise.
  void validate(const LearningConfiguration& config) const;

 private:
  std::vector<ParamDomain> domains_;
  std::vector<Constraint> constraints_;
};

}  // namespace darl::core
