// darl/core/tpe.hpp
//
// Tree-structured Parzen Estimator exploratory method (Bergstra et al.
// 2011) — the model-based search the paper's §III-C names via Hyperopt as
// an alternative implementation of the exploration stage.
//
// After a random startup phase, observed trials are split into a "good"
// quantile and the rest; per-parameter Parzen densities l(x) (good) and
// g(x) (rest) are fitted, candidates are drawn from l and the one
// maximizing the density ratio l(x)/g(x) — equivalently the expected
// improvement — is proposed. Parameters are modelled independently
// (Optuna's default independent sampler).

#pragma once

#include "darl/core/explorer.hpp"

namespace darl::core {

/// TPE options.
struct TpeOptions {
  std::size_t n_trials = 30;        ///< total ask() budget
  std::size_t n_startup = 8;        ///< random trials before the model kicks in
  double gamma = 0.25;              ///< fraction of trials deemed "good"
  std::size_t n_candidates = 24;    ///< EI candidates per ask()
  double categorical_prior = 1.0;   ///< Dirichlet-style smoothing count
  /// Bandwidth floor as a fraction of the domain span (real parameters).
  double min_bandwidth_fraction = 0.05;
};

/// Tree-structured Parzen Estimator over one objective metric.
class TpeSearch final : public ExploratoryMethod {
 public:
  TpeSearch(ParamSpace space, MetricDef objective, TpeOptions options,
            std::uint64_t seed);

  const std::string& name() const override { return name_; }
  std::optional<Proposal> ask() override;
  void tell(std::size_t trial_id, const MetricValues& metrics) override;
  /// Drops the pending proposal; the failed trial never enters the model.
  void tell_failure(std::size_t trial_id) override;

  /// Number of completed (told) trials.
  std::size_t observations() const { return history_.size(); }

 private:
  struct Observation {
    LearningConfiguration config;
    double score = 0.0;  ///< internally maximized
  };

  /// Split history into good/rest views (indices), best first.
  void split(std::vector<const Observation*>& good,
             std::vector<const Observation*>& rest) const;

  /// Sample one candidate configuration from the "good" Parzen model.
  LearningConfiguration sample_from_model(
      const std::vector<const Observation*>& good);

  /// log-density of `config` under the Parzen model of `group`.
  double log_density(const LearningConfiguration& config,
                     const std::vector<const Observation*>& group) const;

  /// Per-dimension helpers.
  double dim_log_density(const ParamDomain& dom, const ParamValue& v,
                         const std::vector<const Observation*>& group) const;
  ParamValue dim_sample(const ParamDomain& dom,
                        const std::vector<const Observation*>& group);

  std::string name_ = "TPE";
  ParamSpace space_;
  MetricDef objective_;
  TpeOptions options_;
  Rng rng_;
  std::size_t asked_ = 0;
  std::vector<Observation> history_;
  std::map<std::size_t, LearningConfiguration> pending_;
};

}  // namespace darl::core
