// darl/core/pareto.hpp
//
// Pareto dominance machinery for stage (e) of the methodology: the
// non-dominated filter behind the paper's Figures 4-6, non-dominated
// sorting into successive fronts, and hypervolume indicators for
// quantitative front comparison.

#pragma once

#include <cstddef>
#include <vector>

#include "darl/core/metric.hpp"

namespace darl {
class Rng;
}

namespace darl::core {

/// True when point `a` Pareto-dominates point `b` under the given senses:
/// a is at least as good on every metric and strictly better on one.
/// Points must have the same size as `senses`.
bool dominates(const std::vector<double>& a, const std::vector<double>& b,
               const std::vector<Sense>& senses);

/// Indices of the non-dominated points (first Pareto front), in input
/// order. Duplicate points are all kept (none dominates the other).
std::vector<std::size_t> pareto_front(
    const std::vector<std::vector<double>>& points,
    const std::vector<Sense>& senses);

/// Non-dominated sorting: partition all points into successive fronts
/// (front 0 = pareto_front; front k = front of the remainder).
std::vector<std::vector<std::size_t>> non_dominated_sort(
    const std::vector<std::vector<double>>& points,
    const std::vector<Sense>& senses);

/// Exact hypervolume of a 2-objective front with respect to a reference
/// point. Points and the reference are first converted to minimization
/// form; the reference must be dominated by every point (i.e. worse on
/// both objectives), otherwise the offending point contributes nothing.
double hypervolume_2d(const std::vector<std::vector<double>>& points,
                      const std::vector<Sense>& senses,
                      const std::vector<double>& reference);

/// Monte Carlo hypervolume estimate for >= 2 objectives (used where no
/// exact routine is provided). `samples` uniform draws in the reference
/// box; standard error ~ sqrt(p(1-p)/samples) * box volume.
double hypervolume_monte_carlo(const std::vector<std::vector<double>>& points,
                               const std::vector<Sense>& senses,
                               const std::vector<double>& reference,
                               std::size_t samples, Rng& rng);

}  // namespace darl::core
