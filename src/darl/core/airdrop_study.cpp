#include "darl/core/airdrop_study.hpp"

#include <fstream>

#include "darl/airdrop/spec.hpp"
#include "darl/common/error.hpp"
#include "darl/common/log.hpp"
#include "darl/frameworks/backend.hpp"
#include "darl/frameworks/distributed.hpp"

namespace darl::core {
namespace {

constexpr double kPaperTimesteps = 200000.0;

frameworks::FrameworkKind framework_from_label(const std::string& label) {
  if (label == "RLlib") return frameworks::FrameworkKind::RayRllib;
  if (label == "StableBaselines") return frameworks::FrameworkKind::StableBaselines;
  if (label == "TF-Agents") return frameworks::FrameworkKind::TfAgents;
  throw InvalidArgument("unknown framework label '" + label + "'");
}

rl::AlgoKind algo_from_label(const std::string& label) {
  if (label == "PPO") return rl::AlgoKind::PPO;
  if (label == "SAC") return rl::AlgoKind::SAC;
  throw InvalidArgument("unknown algorithm label '" + label + "'");
}

ode::RkOrder rk_from_int(std::int64_t order) {
  switch (order) {
    case 3: return ode::RkOrder::Order3;
    case 5: return ode::RkOrder::Order5;
    case 8: return ode::RkOrder::Order8;
    default: throw InvalidArgument("unsupported Runge-Kutta order");
  }
}

LearningConfiguration make_config(std::int64_t rk, const char* framework,
                                  const char* algo, std::int64_t nodes,
                                  std::int64_t cores) {
  LearningConfiguration c;
  c.set(kParamRkOrder, rk);
  c.set(kParamFramework, std::string(framework));
  c.set(kParamAlgorithm, std::string(algo));
  c.set(kParamNodes, nodes);
  c.set(kParamCores, cores);
  return c;
}

}  // namespace

double paper_time_scale(const AirdropStudyOptions& options) {
  return kPaperTimesteps / static_cast<double>(options.total_timesteps);
}

ParamSpace airdrop_param_space() {
  ParamSpace space;
  space.add(ParamDomain::integer_set(kParamRkOrder, {3, 5, 8},
                                     ParamCategory::Environment));
  space.add(ParamDomain::categorical(
      kParamFramework, {"RLlib", "StableBaselines", "TF-Agents"},
      ParamCategory::Algorithm));
  space.add(ParamDomain::categorical(kParamAlgorithm, {"PPO", "SAC"},
                                     ParamCategory::Algorithm));
  space.add(ParamDomain::integer_set(kParamNodes, {1, 2}, ParamCategory::System));
  space.add(ParamDomain::integer_set(kParamCores, {2, 4}, ParamCategory::System));
  // Framework capability coupling (§V-b): only RLlib distributes across
  // nodes; exploratory methods therefore never propose multi-node Stable
  // Baselines / TF-Agents configurations.
  space.add_constraint(
      [](const LearningConfiguration& c) {
        return c.get_integer(kParamNodes) == 1 ||
               c.get_categorical(kParamFramework) == "RLlib";
      },
      "multi-node deployments require RLlib");
  return space;
}

CaseStudyDef make_airdrop_case_study(const AirdropStudyOptions& options) {
  CaseStudyDef def;
  def.name = "airdrop-package-delivery";
  def.space = airdrop_param_space();
  def.metrics = MetricSet::paper_metrics();
  // Mean parameter staleness of consumed batches (versions). A schedule
  // property, identical between the in-process and multi-process runtimes
  // (DESIGN.md §17); 0 for the synchronous single-node frameworks.
  def.metrics.add({"NetStaleness", "versions", Sense::Minimize});

  const AirdropStudyOptions opts = options;
  def.evaluate = [opts](const LearningConfiguration& config,
                        double budget_fraction,
                        std::uint64_t seed) -> MetricValues {
    DARL_CHECK(budget_fraction > 0.0 && budget_fraction <= 1.0,
               "budget fraction out of (0,1]");

    const auto fw = framework_from_label(config.get_categorical(kParamFramework));
    const auto algo = algo_from_label(config.get_categorical(kParamAlgorithm));

    airdrop::AirdropConfig env_cfg = opts.base_env;
    env_cfg.rk_order = rk_from_int(config.get_integer(kParamRkOrder));
    // SAC needs a continuous steering channel; PPO uses the paper's
    // discrete rotation-direction actions.
    env_cfg.action_mode = algo == rl::AlgoKind::SAC
                              ? airdrop::ActionMode::Continuous
                              : airdrop::ActionMode::Discrete3;

    frameworks::TrainRequest request;
    request.env_factory = airdrop::make_airdrop_factory(env_cfg);
    // The same configuration as an opaque spec string: remote actor
    // processes rebuild an identical factory from it (unused — and
    // harmless — on the in-process paths).
    request.env_spec = airdrop::encode_airdrop_spec(env_cfg);
    request.algo.kind = algo;
    if (algo == rl::AlgoKind::PPO) {
      // Each framework ships its own PPO defaults; these profiles mirror
      // the real libraries' relative settings (Stable Baselines: many
      // epochs, small minibatches; RLlib: larger minibatches, wider clip,
      // more conservative learning rate; TF-Agents: in between) — one real
      // mechanism behind the per-framework reward differences in Table I.
      auto& p = request.algo.ppo;
      switch (fw) {
        case frameworks::FrameworkKind::StableBaselines:
          p.epochs = 10;
          p.minibatch_size = 64;
          p.entropy_coef = 0.0;
          break;
        case frameworks::FrameworkKind::RayRllib:
          p.epochs = 6;
          p.minibatch_size = 128;
          p.clip_epsilon = 0.3;
          p.learning_rate = 1e-4;
          break;
        case frameworks::FrameworkKind::TfAgents:
          p.epochs = 8;
          p.minibatch_size = 64;
          p.learning_rate = 2e-4;
          break;
      }
    } else if (algo == rl::AlgoKind::SAC) {
      auto& s = request.algo.sac;
      s.batch_size = 64;
      s.updates_per_step = 0.5;
      s.warmup_steps = 512;
    }
    request.deployment.nodes =
        static_cast<std::size_t>(config.get_integer(kParamNodes));
    request.deployment.cores_per_node =
        static_cast<std::size_t>(config.get_integer(kParamCores));
    // Single-node frameworks cannot spread over nodes; requesting more
    // simply deploys on one (their real-world behaviour).
    if (fw != frameworks::FrameworkKind::RayRllib) request.deployment.nodes = 1;

    request.total_timesteps = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               static_cast<double>(opts.total_timesteps) * budget_fraction));
    request.seed = seed;
    request.train_batch_total = opts.train_batch_total;
    request.steps_per_env = opts.steps_per_env;
    request.eval_episodes = opts.eval_episodes;

    // Average the trial over independent training seeds (see
    // AirdropStudyOptions::seeds_per_trial). Time and power are nearly
    // deterministic across seeds; the reward is the noisy quantity.
    const std::size_t reps = std::max<std::size_t>(1, opts.seeds_per_trial);
    frameworks::TrainResult acc{};
    for (std::size_t rep = 0; rep < reps; ++rep) {
      frameworks::TrainRequest req = request;
      req.seed = Rng(seed).split(rep).seed();
      // Multi-process execution is an RLlib multi-node concern: the other
      // frameworks (and single-node RLlib) have no remote actors to host.
      const bool multi_process = opts.distributed.enabled &&
                                 fw == frameworks::FrameworkKind::RayRllib &&
                                 req.deployment.nodes > 1;
      auto backend =
          multi_process
              ? frameworks::make_distributed_backend(opts.distributed)
              : frameworks::make_backend(fw);
      const frameworks::TrainResult result = backend->run(req);
      acc.reward += result.reward;
      acc.sim_seconds += result.sim_seconds;
      acc.sim_energy_joules += result.sim_energy_joules;
      acc.train_reward += result.train_reward;
      acc.reward_stddev += result.reward_stddev;
      acc.wall_seconds += result.wall_seconds;
      acc.episodes += result.episodes;
      acc.collect_wall_seconds += result.collect_wall_seconds;
      acc.learn_wall_seconds += result.learn_wall_seconds;
      acc.sync_wall_seconds += result.sync_wall_seconds;
      acc.net_staleness += result.net_staleness;
    }
    const double inv = 1.0 / static_cast<double>(reps);

    const double scale = paper_time_scale(opts);
    MetricValues metrics;
    metrics["Reward"] = acc.reward * inv;
    metrics["ComputationTime"] = acc.sim_seconds * inv * scale / 60.0;  // min
    metrics["PowerConsumption"] =
        acc.sim_energy_joules * inv * scale / 1e3;  // kJ
    metrics["NetStaleness"] = acc.net_staleness * inv;
    // Extra diagnostics travel alongside the declared metrics.
    metrics["TrainReward"] = acc.train_reward * inv;
    metrics["RewardStddev"] = acc.reward_stddev * inv;
    metrics["WallSeconds"] = acc.wall_seconds;  // total host cost
    metrics["Episodes"] = static_cast<double>(acc.episodes) * inv;
    // Host-side phase breakdown (totals across seeds, like WallSeconds):
    // where inside a trial the wall time went. Rendered by
    // render_phase_breakdown next to the paper's Table-I metrics.
    metrics["CollectSeconds"] = acc.collect_wall_seconds;
    metrics["LearnSeconds"] = acc.learn_wall_seconds;
    metrics["SyncSeconds"] = acc.sync_wall_seconds;
    return metrics;
  };
  return def;
}

std::vector<LearningConfiguration> paper_table1_configs() {
  // Reconstruction of Table I (the scan preserves only the RK-order column
  // and the prose constraints; see EXPERIMENTS.md). 1-based solution ids
  // in comments match the paper text.
  return {
      make_config(3, "RLlib", "PPO", 2, 2),            // 1
      make_config(3, "RLlib", "PPO", 2, 4),            // 2: fastest
      make_config(3, "RLlib", "PPO", 1, 4),            // 3
      make_config(5, "RLlib", "PPO", 1, 4),            // 4: =7 except RK
      make_config(5, "RLlib", "PPO", 2, 4),            // 5: trade-off
      make_config(5, "RLlib", "SAC", 2, 4),            // 6
      make_config(8, "RLlib", "PPO", 1, 4),            // 7: -0.52
      make_config(8, "RLlib", "PPO", 2, 4),            // 8: -0.73 (stale)
      make_config(3, "TF-Agents", "SAC", 1, 4),        // 9
      make_config(3, "TF-Agents", "PPO", 1, 2),        // 10
      make_config(3, "TF-Agents", "PPO", 1, 4),        // 11: lowest power
      make_config(8, "TF-Agents", "PPO", 1, 4),        // 12
      make_config(8, "TF-Agents", "SAC", 1, 4),        // 13
      make_config(3, "StableBaselines", "PPO", 1, 2),  // 14: -0.47
      make_config(3, "StableBaselines", "PPO", 1, 4),  // 15
      make_config(8, "StableBaselines", "PPO", 1, 4),  // 16: best reward
      make_config(8, "StableBaselines", "SAC", 1, 4),  // 17
      make_config(8, "StableBaselines", "PPO", 1, 2),  // 18
  };
}

std::vector<TrialRecord> run_table1_campaign(const AirdropStudyOptions& options,
                                             const std::string& cache_path,
                                             const StudyOptions& study_options) {
  const CaseStudyDef def = make_airdrop_case_study(options);
  const auto configs = paper_table1_configs();
  const CampaignCacheKey cache_key{study_options.seed,
                                   config_list_digest(configs)};

  if (!cache_path.empty()) {
    std::ifstream in(cache_path);
    if (in) {
      auto cached = load_campaign_cache(in, def, cache_key);
      if (cached.has_value() && cached->size() == configs.size()) {
        DARL_LOG_INFO << "table-1 campaign loaded from cache '" << cache_path << "'";
        return *cached;
      }
      DARL_LOG_WARN << "stale or invalid campaign cache '" << cache_path
                    << "' (wrong seed/configs or unreadable), re-running";
    }
  }

  Study study(def, std::make_unique<FixedListSearch>(configs), study_options);
  study.run();

  if (!cache_path.empty()) {
    if (study.failed_trials() > 0) {
      // Transient faults must not be persisted: a cache hit would replay
      // the failures forever instead of retrying them next run.
      DARL_LOG_WARN << "campaign had " << study.failed_trials()
                    << " failed trial(s); not writing cache '" << cache_path
                    << "'";
    } else {
      std::ofstream out(cache_path);
      if (out) {
        write_campaign_cache(out, def, study.trials(), cache_key);
      } else {
        DARL_LOG_WARN << "could not write campaign cache '" << cache_path << "'";
      }
    }
  }
  return study.trials();
}

}  // namespace darl::core
