// darl/core/metric.hpp
//
// Stage (d) of the methodology: evaluation metrics. A MetricSet declares
// what a study measures per trial (name, unit, optimization sense); trial
// results carry one value per declared metric.

#pragma once

#include <map>
#include <string>
#include <vector>

namespace darl::core {

/// Whether larger or smaller values of a metric are better.
enum class Sense { Maximize, Minimize };

const char* sense_name(Sense s);

/// Declaration of one evaluation metric.
struct MetricDef {
  std::string name;
  std::string unit;  ///< for display only ("min", "kJ", "")
  Sense sense = Sense::Maximize;
};

/// Values measured for one trial, keyed by metric name.
using MetricValues = std::map<std::string, double>;

/// The ordered metric declarations of a study.
class MetricSet {
 public:
  void add(MetricDef def);

  const std::vector<MetricDef>& defs() const { return defs_; }
  std::size_t size() const { return defs_.size(); }
  const MetricDef& def(const std::string& name) const;
  bool has(const std::string& name) const;

  /// Extract the declared metrics from `values` in declaration order;
  /// throws darl::InvalidArgument when one is missing or non-finite.
  std::vector<double> extract(const MetricValues& values) const;

  /// The paper's three metrics: Reward (maximize), Computation Time in
  /// minutes (minimize), Power Consumption in kJ (minimize).
  static MetricSet paper_metrics();

 private:
  std::vector<MetricDef> defs_;
};

}  // namespace darl::core
