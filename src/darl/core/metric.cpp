#include "darl/core/metric.hpp"

#include <cmath>

#include "darl/common/error.hpp"

namespace darl::core {

const char* sense_name(Sense s) {
  return s == Sense::Maximize ? "maximize" : "minimize";
}

void MetricSet::add(MetricDef def) {
  DARL_CHECK(!def.name.empty(), "metric needs a name");
  DARL_CHECK(!has(def.name), "duplicate metric '" << def.name << "'");
  defs_.push_back(std::move(def));
}

bool MetricSet::has(const std::string& name) const {
  for (const auto& d : defs_) {
    if (d.name == name) return true;
  }
  return false;
}

const MetricDef& MetricSet::def(const std::string& name) const {
  for (const auto& d : defs_) {
    if (d.name == name) return d;
  }
  throw InvalidArgument("no metric named '" + name + "'");
}

std::vector<double> MetricSet::extract(const MetricValues& values) const {
  std::vector<double> out;
  out.reserve(defs_.size());
  for (const auto& d : defs_) {
    const auto it = values.find(d.name);
    DARL_CHECK(it != values.end(), "trial did not report metric '" << d.name << "'");
    DARL_CHECK(std::isfinite(it->second),
               "metric '" << d.name << "' is non-finite");
    out.push_back(it->second);
  }
  return out;
}

MetricSet MetricSet::paper_metrics() {
  MetricSet m;
  m.add({"Reward", "", Sense::Maximize});
  m.add({"ComputationTime", "min", Sense::Minimize});
  m.add({"PowerConsumption", "kJ", Sense::Minimize});
  return m;
}

}  // namespace darl::core
