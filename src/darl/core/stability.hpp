// darl/core/stability.hpp
//
// Robustness analysis for the ranking stage. The paper's §VI-D notes that
// distributed learning "comes with uncertainties and a lack of
// reproducibility regarding the accuracy" — which means a Pareto front
// computed from one campaign is itself uncertain. This module quantifies
// that: it resamples the metric table under multiplicative noise (or under
// supplied per-metric standard deviations) and reports how often each
// configuration stays non-dominated. A decision maker can then distinguish
// solid front members from coin-flip ones.

#pragma once

#include <vector>

#include "darl/core/metric.hpp"

namespace darl {
class Rng;
}

namespace darl::core {

/// Options for front_stability.
struct StabilityOptions {
  /// Number of perturbed resamples of the metric table.
  std::size_t samples = 1000;
  /// Relative (multiplicative, Gaussian) noise applied to each metric
  /// value, used when `absolute_stddev` is empty.
  double relative_noise = 0.05;
  /// Optional per-metric absolute standard deviations (size = #metrics);
  /// overrides relative noise for the metrics where the entry is > 0.
  std::vector<double> absolute_stddev;
};

/// Per-point front-membership statistics.
struct StabilityResult {
  /// membership[i] = fraction of resamples in which point i was
  /// non-dominated.
  std::vector<double> membership;
  /// Indices whose membership >= 0.5, sorted by membership descending —
  /// the "robust front".
  std::vector<std::size_t> robust_front;
};

/// Estimate the stability of the Pareto front of `points` (rows = trials,
/// columns aligned with `metrics`). Noise is resampled independently per
/// point, metric and draw.
StabilityResult front_stability(const std::vector<std::vector<double>>& points,
                                const MetricSet& metrics,
                                const StabilityOptions& options, Rng& rng);

}  // namespace darl::core
