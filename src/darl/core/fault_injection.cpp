#include "darl/core/fault_injection.hpp"

#include <chrono>
#include <thread>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"

namespace darl::core {

CaseStudyDef make_fault_injection_case_study(
    const FaultInjectionOptions& options) {
  DARL_CHECK(options.throw_probability >= 0.0 && options.throw_probability <= 1.0,
             "throw probability out of [0,1]");
  DARL_CHECK(options.hang_probability >= 0.0 && options.hang_probability <= 1.0,
             "hang probability out of [0,1]");
  DARL_CHECK(options.hang_seconds >= 0.0, "hang duration must be non-negative");

  CaseStudyDef def;
  def.name = "fault-injection";
  def.space.add(
      ParamDomain::integer_set("x", {1, 2, 3, 4}, ParamCategory::System));
  def.space.add(
      ParamDomain::categorical("mode", {"a", "b"}, ParamCategory::Algorithm));
  def.metrics.add({"quality", "", Sense::Maximize});
  def.metrics.add({"cost", "s", Sense::Minimize});

  const FaultInjectionOptions opts = options;
  def.evaluate = [opts](const LearningConfiguration& config,
                        double budget_fraction,
                        std::uint64_t seed) -> MetricValues {
    // The fault lottery hashes (config, seed, fault_seed): deterministic
    // per attempt, independent across attempts once the study reseeds.
    Rng lottery(splitmix64(fnv1a64(config.cache_key()) ^ seed) ^
                opts.fault_seed);
    if (lottery.bernoulli(opts.throw_probability)) {
      throw Error("injected fault evaluating [" + config.describe() + "]");
    }
    if (lottery.bernoulli(opts.hang_probability)) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(opts.hang_seconds));
    }
    const double x = static_cast<double>(config.get_integer("x"));
    const double bonus = config.get_categorical("mode") == "a" ? 0.5 : 0.0;
    return {{"quality", (x + bonus) * budget_fraction}, {"cost", x * x}};
  };
  return def;
}

}  // namespace darl::core
