// darl/core/fault_injection.hpp
//
// Synthetic case study with configurable fault injection: evaluations
// throw or hang with per-attempt probabilities. Production distributed-RL
// stacks treat actor/learner failure as a first-class event; this case
// study lets the fault-tolerance machinery in Study::run (retries,
// timeouts, skip/abort policies, explorer failure protocol) be exercised
// deterministically in tier-1 tests and demos without a real flaky
// cluster.

#pragma once

#include <cstdint>

#include "darl/core/study.hpp"

namespace darl::core {

/// Fault-injection knobs. Fault decisions are a deterministic function of
/// (configuration, evaluation seed, fault_seed): the same attempt always
/// behaves the same way, while a *retried* attempt — which Study::run
/// reseeds — re-rolls its fate, so retry-then-succeed paths are reachable.
struct FaultInjectionOptions {
  /// Probability that an evaluation attempt throws darl::Error.
  double throw_probability = 0.0;
  /// Probability that an attempt hangs (sleeps) instead of returning
  /// promptly — pair with StudyOptions::trial_timeout_seconds.
  double hang_probability = 0.0;
  /// How long a "hung" attempt sleeps before completing normally. Kept
  /// short so abandoned watchdog threads drain quickly in tests.
  double hang_seconds = 0.25;
  /// Stream selector for the fault lottery, independent of the study seed.
  std::uint64_t fault_seed = 0xFA17;
};

/// Case study "fault-injection": parameter space {x in 1..4, mode in
/// {a,b}}, metrics quality (maximize) and cost (minimize) computed
/// analytically from the configuration, with faults injected per the
/// options. Metrics are independent of the evaluation seed, so campaigns
/// that retry through faults still produce deterministic tables.
CaseStudyDef make_fault_injection_case_study(
    const FaultInjectionOptions& options = {});

}  // namespace darl::core
