// darl/core/explorer.hpp
//
// Stage (c) of the methodology: exploratory methods. An ExploratoryMethod
// decides which learning configurations to evaluate (and at which training
// budget) through an ask/tell protocol, so pruning strategies can react to
// intermediate results. Implementations: the paper's Random Search, the
// Grid Search alternative it names, a fixed configuration list (the
// "manually selected" §V campaign), and Successive Halving as the
// Optuna-style pruning idea of §III-C.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_set>

#include "darl/common/rng.hpp"
#include "darl/core/metric.hpp"
#include "darl/core/param.hpp"

namespace darl::core {

/// A configuration to evaluate, with the training-budget fraction to spend
/// on it (1.0 = full budget; pruning methods start lower).
struct Proposal {
  std::size_t trial_id = 0;
  LearningConfiguration config;
  double budget_fraction = 1.0;
};

/// Ask/tell exploration strategy. Single-threaded protocol: every ask()
/// must be answered by a tell() — or a tell_failure() when the trial
/// failed permanently — with the same trial id before the study finishes
/// (methods may allow several outstanding asks; the default
/// implementations do).
class ExploratoryMethod {
 public:
  virtual ~ExploratoryMethod() = default;

  virtual const std::string& name() const = 0;

  /// Next configuration to evaluate, or nullopt when the search is over.
  virtual std::optional<Proposal> ask() = 0;

  /// Report a finished trial's metrics.
  virtual void tell(std::size_t trial_id, const MetricValues& metrics) = 0;

  /// Report that a trial failed permanently: no tell() will ever arrive
  /// for this id. Uninformed methods may ignore it (the default); adaptive
  /// methods must resolve the outstanding ask so they do not stall waiting
  /// for metrics that never come.
  virtual void tell_failure(std::size_t trial_id) { (void)trial_id; }
};

/// Exhaustive grid enumeration (real domains discretized).
class GridSearch final : public ExploratoryMethod {
 public:
  GridSearch(ParamSpace space, std::size_t real_grid_points = 5);

  const std::string& name() const override { return name_; }
  std::optional<Proposal> ask() override;
  void tell(std::size_t trial_id, const MetricValues& metrics) override;

 private:
  std::string name_ = "GridSearch";
  ParamSpace space_;
  std::size_t real_grid_points_;
  std::size_t next_ = 0;
  std::size_t total_;
};

/// Uniform random sampling of `n_trials` configurations (the paper's
/// choice, §V-c). Repeated configurations are re-drawn a bounded number of
/// times, then accepted (small discrete spaces may not have n distinct
/// points).
class RandomSearch final : public ExploratoryMethod {
 public:
  RandomSearch(ParamSpace space, std::size_t n_trials, std::uint64_t seed);

  const std::string& name() const override { return name_; }
  std::optional<Proposal> ask() override;
  void tell(std::size_t trial_id, const MetricValues& metrics) override;

 private:
  std::string name_ = "RandomSearch";
  ParamSpace space_;
  std::size_t n_trials_;
  std::unique_ptr<Rng> rng_;
  std::size_t next_ = 0;
  std::unordered_set<std::string> seen_keys_;
};

/// Evaluate an explicit configuration list in order (the paper's manually
/// selected Table-I campaign).
class FixedListSearch final : public ExploratoryMethod {
 public:
  explicit FixedListSearch(std::vector<LearningConfiguration> configs);

  const std::string& name() const override { return name_; }
  std::optional<Proposal> ask() override;
  void tell(std::size_t trial_id, const MetricValues& metrics) override;

 private:
  std::string name_ = "FixedList";
  std::vector<LearningConfiguration> configs_;
  std::size_t next_ = 0;
};

/// Successive halving over one objective metric: rung 0 evaluates
/// `initial_trials` random configurations at `min_budget_fraction`; each
/// rung keeps the best 1/eta and multiplies the budget by eta until it
/// reaches 1.0. The pruning-style exploratory method of §III-C.
class SuccessiveHalving final : public ExploratoryMethod {
 public:
  SuccessiveHalving(ParamSpace space, MetricDef objective,
                    std::size_t initial_trials, double eta,
                    double min_budget_fraction, std::uint64_t seed);

  const std::string& name() const override { return name_; }
  std::optional<Proposal> ask() override;
  void tell(std::size_t trial_id, const MetricValues& metrics) override;
  /// A failed trial scores -inf: it is ranked last in its rung (and so
  /// pruned) instead of stalling the rung forever.
  void tell_failure(std::size_t trial_id) override;

  std::size_t rung() const { return rung_; }

 private:
  void resolve(std::size_t trial_id, double score);
  void build_next_rung();

  std::string name_ = "SuccessiveHalving";
  ParamSpace space_;
  MetricDef objective_;
  double eta_;
  std::unique_ptr<Rng> rng_;

  struct RungEntry {
    LearningConfiguration config;
    std::optional<double> score;
    std::size_t trial_id = 0;
    bool asked = false;
  };
  std::vector<RungEntry> current_;
  double budget_ = 0.0;
  std::size_t rung_ = 0;
  std::size_t next_in_rung_ = 0;
  std::size_t next_trial_id_ = 0;
  bool done_ = false;
};

}  // namespace darl::core
