#include "darl/core/param.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"

namespace darl::core {

const char* param_category_name(ParamCategory c) {
  switch (c) {
    case ParamCategory::Algorithm: return "algorithm";
    case ParamCategory::System: return "system";
    case ParamCategory::Environment: return "environment";
  }
  return "?";
}

std::string param_value_to_string(const ParamValue& v) {
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&v)) return std::to_string(*i);
  std::ostringstream oss;
  oss << std::get<double>(v);
  return oss.str();
}

bool param_value_equal(const ParamValue& a, const ParamValue& b) {
  return a == b;
}

ParamDomain ParamDomain::categorical(std::string name,
                                     std::vector<std::string> choices,
                                     ParamCategory category) {
  DARL_CHECK(!choices.empty(), "categorical domain '" << name << "' is empty");
  std::set<std::string> uniq(choices.begin(), choices.end());
  DARL_CHECK(uniq.size() == choices.size(),
             "categorical domain '" << name << "' has duplicate choices");
  ParamDomain d;
  d.name_ = std::move(name);
  d.category_ = category;
  d.domain_ = Categorical{std::move(choices)};
  return d;
}

ParamDomain ParamDomain::integer_range(std::string name, std::int64_t lo,
                                       std::int64_t hi, std::int64_t step,
                                       ParamCategory category) {
  DARL_CHECK(lo <= hi, "integer domain '" << name << "' bounds inverted");
  DARL_CHECK(step > 0, "integer domain '" << name << "' needs step > 0");
  ParamDomain d;
  d.name_ = std::move(name);
  d.category_ = category;
  d.domain_ = IntRange{lo, hi, step};
  return d;
}

ParamDomain ParamDomain::integer_set(std::string name,
                                     std::vector<std::int64_t> choices,
                                     ParamCategory category) {
  DARL_CHECK(!choices.empty(), "integer set '" << name << "' is empty");
  std::set<std::int64_t> uniq(choices.begin(), choices.end());
  DARL_CHECK(uniq.size() == choices.size(),
             "integer set '" << name << "' has duplicate choices");
  ParamDomain d;
  d.name_ = std::move(name);
  d.category_ = category;
  d.domain_ = IntSet{std::move(choices)};
  return d;
}

ParamDomain ParamDomain::real_range(std::string name, double lo, double hi,
                                    bool log_scale, ParamCategory category) {
  DARL_CHECK(lo < hi, "real domain '" << name << "' needs lo < hi");
  DARL_CHECK(!log_scale || lo > 0.0,
             "log-scale real domain '" << name << "' needs lo > 0");
  ParamDomain d;
  d.name_ = std::move(name);
  d.category_ = category;
  d.domain_ = RealRange{lo, hi, log_scale};
  return d;
}

bool ParamDomain::is_categorical() const {
  return std::holds_alternative<Categorical>(domain_);
}
bool ParamDomain::is_integer() const {
  return std::holds_alternative<IntRange>(domain_) ||
         std::holds_alternative<IntSet>(domain_);
}
bool ParamDomain::is_real() const {
  return std::holds_alternative<RealRange>(domain_);
}

std::optional<std::size_t> ParamDomain::cardinality() const {
  if (const auto* c = std::get_if<Categorical>(&domain_)) return c->choices.size();
  if (const auto* r = std::get_if<IntRange>(&domain_)) {
    return static_cast<std::size_t>((r->hi - r->lo) / r->step) + 1;
  }
  if (const auto* s = std::get_if<IntSet>(&domain_)) return s->choices.size();
  return std::nullopt;
}

ParamValue ParamDomain::grid_value(std::size_t i,
                                   std::size_t real_grid_points) const {
  if (const auto* c = std::get_if<Categorical>(&domain_)) {
    DARL_CHECK(i < c->choices.size(), "grid index out of range for '" << name_ << "'");
    return c->choices[i];
  }
  if (const auto* r = std::get_if<IntRange>(&domain_)) {
    const auto card = *cardinality();
    DARL_CHECK(i < card, "grid index out of range for '" << name_ << "'");
    return r->lo + static_cast<std::int64_t>(i) * r->step;
  }
  if (const auto* s = std::get_if<IntSet>(&domain_)) {
    DARL_CHECK(i < s->choices.size(), "grid index out of range for '" << name_ << "'");
    return s->choices[i];
  }
  const auto& rr = std::get<RealRange>(domain_);
  DARL_CHECK(real_grid_points >= 2, "real grid needs at least 2 points");
  DARL_CHECK(i < real_grid_points, "grid index out of range for '" << name_ << "'");
  const double frac =
      static_cast<double>(i) / static_cast<double>(real_grid_points - 1);
  double v;
  if (rr.log_scale) {
    v = std::exp(std::log(rr.lo) + frac * (std::log(rr.hi) - std::log(rr.lo)));
  } else {
    v = rr.lo + frac * (rr.hi - rr.lo);
  }
  // Guard against round-off pushing endpoints outside the domain.
  return std::clamp(v, rr.lo, rr.hi);
}

ParamValue ParamDomain::sample(Rng& rng) const {
  if (const auto* c = std::get_if<Categorical>(&domain_)) {
    return c->choices[rng.index(c->choices.size())];
  }
  if (const auto* r = std::get_if<IntRange>(&domain_)) {
    const auto card = static_cast<std::int64_t>(*cardinality());
    return r->lo + rng.randint(0, card - 1) * r->step;
  }
  if (const auto* s = std::get_if<IntSet>(&domain_)) {
    return s->choices[rng.index(s->choices.size())];
  }
  const auto& rr = std::get<RealRange>(domain_);
  if (rr.log_scale) {
    return std::clamp(std::exp(rng.uniform(std::log(rr.lo), std::log(rr.hi))),
                      rr.lo, rr.hi);
  }
  return rng.uniform(rr.lo, rr.hi);
}

std::pair<double, double> ParamDomain::real_bounds() const {
  const auto* rr = std::get_if<RealRange>(&domain_);
  DARL_CHECK(rr != nullptr, "parameter '" << name_ << "' is not real-valued");
  return {rr->lo, rr->hi};
}

bool ParamDomain::real_log_scale() const {
  const auto* rr = std::get_if<RealRange>(&domain_);
  DARL_CHECK(rr != nullptr, "parameter '" << name_ << "' is not real-valued");
  return rr->log_scale;
}

bool ParamDomain::contains(const ParamValue& v) const {
  if (const auto* c = std::get_if<Categorical>(&domain_)) {
    const auto* s = std::get_if<std::string>(&v);
    return s != nullptr &&
           std::find(c->choices.begin(), c->choices.end(), *s) != c->choices.end();
  }
  if (const auto* r = std::get_if<IntRange>(&domain_)) {
    const auto* i = std::get_if<std::int64_t>(&v);
    return i != nullptr && *i >= r->lo && *i <= r->hi &&
           (*i - r->lo) % r->step == 0;
  }
  if (const auto* s = std::get_if<IntSet>(&domain_)) {
    const auto* i = std::get_if<std::int64_t>(&v);
    return i != nullptr && std::find(s->choices.begin(), s->choices.end(),
                                     *i) != s->choices.end();
  }
  const auto& rr = std::get<RealRange>(domain_);
  const auto* d = std::get_if<double>(&v);
  return d != nullptr && *d >= rr.lo && *d <= rr.hi;
}

void LearningConfiguration::set(const std::string& name, ParamValue value) {
  values_[name] = std::move(value);
}

bool LearningConfiguration::has(const std::string& name) const {
  return values_.count(name) != 0;
}

const ParamValue& LearningConfiguration::get(const std::string& name) const {
  const auto it = values_.find(name);
  DARL_CHECK(it != values_.end(), "configuration has no parameter '" << name << "'");
  return it->second;
}

const std::string& LearningConfiguration::get_categorical(
    const std::string& name) const {
  const auto* s = std::get_if<std::string>(&get(name));
  DARL_CHECK(s != nullptr, "parameter '" << name << "' is not categorical");
  return *s;
}

std::int64_t LearningConfiguration::get_integer(const std::string& name) const {
  const auto* i = std::get_if<std::int64_t>(&get(name));
  DARL_CHECK(i != nullptr, "parameter '" << name << "' is not an integer");
  return *i;
}

double LearningConfiguration::get_real(const std::string& name) const {
  const ParamValue& v = get(name);
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  throw InvalidArgument("parameter '" + name + "' is not numeric");
}

std::string LearningConfiguration::describe() const {
  std::ostringstream oss;
  bool first = true;
  for (const auto& [k, v] : values_) {
    if (!first) oss << ", ";
    first = false;
    oss << k << '=' << param_value_to_string(v);
  }
  return oss.str();
}

bool LearningConfiguration::operator==(const LearningConfiguration& other) const {
  return values_ == other.values_;
}

void ParamSpace::add(ParamDomain domain) {
  for (const auto& d : domains_) {
    DARL_CHECK(d.name() != domain.name(),
               "duplicate parameter '" << domain.name() << "'");
  }
  domains_.push_back(std::move(domain));
}

const ParamDomain& ParamSpace::domain(const std::string& name) const {
  for (const auto& d : domains_) {
    if (d.name() == name) return d;
  }
  throw InvalidArgument("space has no parameter '" + name + "'");
}

std::size_t ParamSpace::grid_size(std::size_t real_grid_points) const {
  DARL_CHECK(!domains_.empty(), "grid over an empty space");
  std::size_t n = 1;
  for (const auto& d : domains_) {
    n *= d.cardinality().value_or(real_grid_points);
  }
  return n;
}

LearningConfiguration ParamSpace::grid_point(std::size_t index,
                                             std::size_t real_grid_points) const {
  DARL_CHECK(index < grid_size(real_grid_points), "grid index out of range");
  LearningConfiguration config;
  std::size_t rem = index;
  for (const auto& d : domains_) {
    const std::size_t card = d.cardinality().value_or(real_grid_points);
    config.set(d.name(), d.grid_value(rem % card, real_grid_points));
    rem /= card;
  }
  return config;
}

void ParamSpace::add_constraint(
    std::function<bool(const LearningConfiguration&)> predicate,
    std::string description) {
  DARL_CHECK(predicate != nullptr, "null constraint predicate");
  constraints_.push_back(Constraint{std::move(predicate), std::move(description)});
}

bool ParamSpace::satisfies_constraints(const LearningConfiguration& config) const {
  for (const auto& c : constraints_) {
    if (!c.predicate(config)) return false;
  }
  return true;
}

LearningConfiguration ParamSpace::sample(Rng& rng) const {
  DARL_CHECK(!domains_.empty(), "sampling from an empty space");
  constexpr int kMaxAttempts = 1000;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    LearningConfiguration config;
    for (const auto& d : domains_) config.set(d.name(), d.sample(rng));
    if (satisfies_constraints(config)) return config;
  }
  throw Error("no feasible configuration found in " +
              std::to_string(kMaxAttempts) + " samples — constraints may be "
              "unsatisfiable");
}

void ParamSpace::validate(const LearningConfiguration& config) const {
  for (const auto& d : domains_) {
    DARL_CHECK(config.has(d.name()),
               "configuration is missing parameter '" << d.name() << "'");
    DARL_CHECK(d.contains(config.get(d.name())),
               "value " << param_value_to_string(config.get(d.name()))
                        << " is outside the domain of '" << d.name() << "'");
  }
  for (const auto& c : constraints_) {
    DARL_CHECK(c.predicate(config),
               "configuration violates constraint: " << c.description);
  }
}

}  // namespace darl::core
