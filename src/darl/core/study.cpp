#include "darl/core/study.hpp"

#include "darl/common/error.hpp"
#include "darl/common/log.hpp"
#include "darl/common/rng.hpp"
#include "darl/common/stopwatch.hpp"
#include "darl/obs/metrics.hpp"
#include "darl/obs/trace.hpp"
#include <thread>

#include "darl/core/pareto.hpp"

namespace darl::core {

Study::Study(CaseStudyDef def, std::unique_ptr<ExploratoryMethod> explorer,
             StudyOptions options)
    : def_(std::move(def)), explorer_(std::move(explorer)), options_(options) {
  DARL_CHECK(def_.evaluate != nullptr, "case study has no evaluate function");
  DARL_CHECK(explorer_ != nullptr, "study needs an exploratory method");
  DARL_CHECK(def_.metrics.size() > 0, "study needs at least one metric");
}

void Study::run() {
  DARL_SPAN("study.run");
  const Rng seeder(options_.seed);
  const std::size_t width = std::max<std::size_t>(1, options_.parallel_trials);
  const Stopwatch study_clock;

  while (true) {
    // Gather a batch of proposals (adaptive explorers may hand out fewer
    // than `width` before needing feedback — that is fine).
    std::vector<Proposal> batch;
    std::vector<double> proposed_at;  // study_clock seconds, per proposal
    while (batch.size() < width) {
      if (options_.max_trials > 0 &&
          trials_.size() + batch.size() >= options_.max_trials) {
        break;
      }
      DARL_SPAN("study.propose");
      auto proposal = explorer_->ask();
      if (!proposal.has_value()) break;
      def_.space.validate(proposal->config);
      if (options_.log_progress) {
        DARL_LOG_INFO << "study '" << def_.name << "': trial "
                      << proposal->trial_id << " ["
                      << proposal->config.describe() << "] budget "
                      << proposal->budget_fraction;
      }
      DARL_COUNTER_ADD("study.trials_proposed", 1);
      batch.push_back(std::move(*proposal));
      proposed_at.push_back(study_clock.seconds());
    }
    if (batch.empty()) break;

    // Evaluate the batch (concurrently when width > 1).
    std::vector<TrialRecord> records(batch.size());
    auto evaluate_one = [&](std::size_t i) {
      const Proposal& p = batch[i];
      // Queue wait: proposal issued -> evaluation actually starting (only
      // meaningfully non-zero once parallel_trials staggers a batch).
      if (obs::metrics_enabled()) {
        static obs::Histogram& wait_hist = obs::Registry::global().histogram(
            "study.queue_wait_s", {0.001, 0.01, 0.1, 1.0, 10.0, 60.0});
        wait_hist.observe(study_clock.seconds() - proposed_at[i]);
      }
      obs::TrialScope trial_tag(static_cast<std::int64_t>(p.trial_id));
      DARL_SPAN_V("trial.evaluate", "trial", p.trial_id);
      Stopwatch sw;
      const std::uint64_t trial_seed = seeder.split(p.trial_id).seed();
      TrialRecord record;
      record.id = p.trial_id;
      record.config = p.config;
      record.budget_fraction = p.budget_fraction;
      record.metrics = def_.evaluate(p.config, p.budget_fraction, trial_seed);
      record.wall_seconds = sw.seconds();
      if (obs::metrics_enabled()) {
        static obs::Histogram& eval_hist = obs::Registry::global().histogram(
            "study.trial_eval_s", {0.1, 1.0, 10.0, 60.0, 600.0});
        eval_hist.observe(record.wall_seconds);
      }
      DARL_COUNTER_ADD("study.trials_done", 1);
      records[i] = std::move(record);
    };
    if (batch.size() == 1) {
      evaluate_one(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        threads.emplace_back(evaluate_one, i);
      }
      for (auto& t : threads) t.join();
    }

    // Record and report feedback in proposal order (deterministic
    // regardless of evaluation scheduling).
    for (auto& record : records) {
      (void)def_.metrics.extract(record.metrics);  // validate completeness
      explorer_->tell(record.id, record.metrics);
      trials_.push_back(std::move(record));
    }
  }
}

std::vector<std::vector<double>> Study::metric_table() const {
  std::vector<std::vector<double>> table;
  table.reserve(trials_.size());
  for (const auto& t : trials_) table.push_back(def_.metrics.extract(t.metrics));
  return table;
}

std::vector<std::vector<double>> Study::full_budget_metric_table(
    std::vector<std::size_t>& indices) const {
  indices.clear();
  std::vector<std::vector<double>> table;
  for (std::size_t i = 0; i < trials_.size(); ++i) {
    if (trials_[i].budget_fraction >= 1.0) {
      indices.push_back(i);
      table.push_back(def_.metrics.extract(trials_[i].metrics));
    }
  }
  return table;
}

std::vector<std::size_t> Study::pareto_trials(
    const std::vector<std::string>& metric_names) const {
  std::vector<std::string> names = metric_names;
  if (names.empty()) {
    for (const auto& d : def_.metrics.defs()) names.push_back(d.name);
  }
  std::vector<Sense> senses;
  senses.reserve(names.size());
  for (const auto& n : names) senses.push_back(def_.metrics.def(n).sense);

  std::vector<std::size_t> indices;
  std::vector<std::vector<double>> points;
  for (std::size_t i = 0; i < trials_.size(); ++i) {
    if (trials_[i].budget_fraction < 1.0) continue;
    std::vector<double> p;
    p.reserve(names.size());
    for (const auto& n : names) {
      const auto it = trials_[i].metrics.find(n);
      DARL_CHECK(it != trials_[i].metrics.end(),
                 "trial " << trials_[i].id << " missing metric '" << n << "'");
      p.push_back(it->second);
    }
    indices.push_back(i);
    points.push_back(std::move(p));
  }
  const auto front = pareto_front(points, senses);
  std::vector<std::size_t> out;
  out.reserve(front.size());
  for (std::size_t f : front) out.push_back(indices[f]);
  return out;
}

}  // namespace darl::core
