#include "darl/core/study.hpp"

#include "darl/common/error.hpp"
#include "darl/common/log.hpp"
#include "darl/common/rng.hpp"
#include "darl/common/stopwatch.hpp"
#include "darl/common/thread_safety.hpp"
#include "darl/obs/flight.hpp"
#include "darl/obs/metrics.hpp"
#include "darl/obs/trace.hpp"
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "darl/core/pareto.hpp"

namespace darl::core {

const char* trial_status_name(TrialStatus status) {
  switch (status) {
    case TrialStatus::Ok: return "ok";
    case TrialStatus::Failed: return "failed";
    case TrialStatus::TimedOut: return "timed_out";
  }
  return "unknown";
}

std::optional<TrialStatus> trial_status_from_name(const std::string& name) {
  if (name == "ok") return TrialStatus::Ok;
  if (name == "failed") return TrialStatus::Failed;
  if (name == "timed_out") return TrialStatus::TimedOut;
  return std::nullopt;
}

Study::Study(CaseStudyDef def, std::unique_ptr<ExploratoryMethod> explorer,
             StudyOptions options)
    : def_(std::move(def)), explorer_(std::move(explorer)), options_(options) {
  DARL_CHECK(def_.evaluate != nullptr, "case study has no evaluate function");
  DARL_CHECK(explorer_ != nullptr, "study needs an exploratory method");
  DARL_CHECK(def_.metrics.size() > 0, "study needs at least one metric");
  DARL_CHECK(options_.retry_backoff_seconds >= 0.0,
             "retry backoff must be non-negative");
  DARL_CHECK(options_.trial_timeout_seconds >= 0.0,
             "trial timeout must be non-negative");
}

namespace {

/// Result of one evaluation attempt. Exactly one of {metrics valid,
/// error set, timed_out} describes the outcome.
struct AttemptOutcome {
  MetricValues metrics;
  std::exception_ptr error;
  bool timed_out = false;
};

std::string describe_exception(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown exception";
  }
}

/// Run one evaluation, optionally under a wall-clock watchdog. A timed-out
/// evaluation keeps running on a detached thread that only touches
/// heap-shared state, so abandoning it is safe.
AttemptOutcome evaluate_attempt(const CaseStudyDef::EvaluateFn& evaluate,
                                const Proposal& proposal,
                                std::uint64_t trial_seed,
                                double timeout_seconds) {
  AttemptOutcome outcome;
  if (timeout_seconds <= 0.0) {
    try {
      outcome.metrics =
          evaluate(proposal.config, proposal.budget_fraction, trial_seed);
    } catch (...) {
      outcome.error = std::current_exception();
    }
    return outcome;
  }

  struct Shared {
    std::mutex mutex;
    std::condition_variable cv;
    bool done DARL_GUARDED_BY(mutex) = false;
    MetricValues metrics DARL_GUARDED_BY(mutex);
    std::exception_ptr error DARL_GUARDED_BY(mutex);
  };
  auto shared = std::make_shared<Shared>();
  std::thread worker([shared, evaluate, config = proposal.config,
                      budget = proposal.budget_fraction,
                      trial_id = proposal.trial_id, trial_seed] {
    obs::TrialScope trial_tag(static_cast<std::int64_t>(trial_id));
    MetricValues metrics;
    std::exception_ptr error;
    try {
      metrics = evaluate(config, budget, trial_seed);
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(shared->mutex);
    shared->metrics = std::move(metrics);
    shared->error = error;
    shared->done = true;
    shared->cv.notify_all();
  });

  std::unique_lock<std::mutex> lock(shared->mutex);
  const bool finished =
      shared->cv.wait_for(lock, std::chrono::duration<double>(timeout_seconds),
                          [&] { return shared->done; });
  if (finished) {
    lock.unlock();
    worker.join();
    outcome.metrics = std::move(shared->metrics);
    outcome.error = shared->error;
  } else {
    lock.unlock();
    // Leaked runaway trials must stay visible: every abandoned watchdog
    // worker bumps this counter (darl_study --obs-out surfaces it).
    DARL_COUNTER_ADD("study.watchdog_detached", 1);
    worker.detach();  // `shared` keeps the abandoned thread's state alive
    outcome.timed_out = true;
  }
  return outcome;
}

}  // namespace

void Study::run() {
  DARL_SPAN("study.run");
  const Rng seeder(options_.seed);
  const std::size_t width = std::max<std::size_t>(1, options_.parallel_trials);
  const Stopwatch study_clock;

  while (true) {
    // Gather a batch of proposals (adaptive explorers may hand out fewer
    // than `width` before needing feedback — that is fine).
    std::vector<Proposal> batch;
    std::vector<double> proposed_at;  // study_clock seconds, per proposal
    while (batch.size() < width) {
      if (options_.max_trials > 0 &&
          trials_.size() + batch.size() >= options_.max_trials) {
        break;
      }
      DARL_SPAN("study.propose");
      auto proposal = explorer_->ask();
      if (!proposal.has_value()) break;
      def_.space.validate(proposal->config);
      if (options_.log_progress) {
        DARL_LOG_INFO << "study '" << def_.name << "': trial "
                      << proposal->trial_id << " ["
                      << proposal->config.describe() << "] budget "
                      << proposal->budget_fraction;
      }
      DARL_COUNTER_ADD("study.trials_proposed", 1);
      batch.push_back(std::move(*proposal));
      proposed_at.push_back(study_clock.seconds());
    }
    if (batch.empty()) break;

    // Evaluate the batch (concurrently when width > 1). Each slot runs its
    // own retry loop and never lets an exception escape its thread; the
    // outcome (including the last failure's exception) is carried back to
    // the ordered recording pass below.
    std::vector<TrialRecord> records(batch.size());
    std::vector<std::exception_ptr> failures(batch.size());
    auto evaluate_one = [&](std::size_t i) {
      const Proposal& p = batch[i];
      // Queue wait: proposal issued -> evaluation actually starting (only
      // meaningfully non-zero once parallel_trials staggers a batch).
      if (obs::metrics_enabled()) {
        static obs::Histogram& wait_hist = obs::Registry::global().histogram(
            "study.queue_wait_s", {0.001, 0.01, 0.1, 1.0, 10.0, 60.0});
        wait_hist.observe(study_clock.seconds() - proposed_at[i]);
      }
      obs::TrialScope trial_tag(static_cast<std::int64_t>(p.trial_id));
      DARL_SPAN_V("trial.evaluate", "trial", p.trial_id);
      Stopwatch sw;
      TrialRecord record;
      record.id = p.trial_id;
      record.config = p.config;
      record.budget_fraction = p.budget_fraction;

      const std::size_t max_attempts = 1 + options_.max_retries;
      for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
        record.attempts = attempt + 1;
        if (attempt > 0) {
          DARL_COUNTER_ADD("study.trials_retried", 1);
          if (options_.retry_backoff_seconds > 0.0) {
            std::this_thread::sleep_for(std::chrono::duration<double>(
                options_.retry_backoff_seconds *
                static_cast<double>(attempt)));
          }
        }
        // Attempt 0 keeps the historical per-trial seed so fault-free
        // campaigns are byte-identical to pre-retry builds; retries draw
        // from a fresh per-attempt child stream.
        const std::uint64_t trial_seed =
            attempt == 0 ? seeder.split(p.trial_id).seed()
                         : seeder.split(p.trial_id).split(attempt).seed();
        const AttemptOutcome outcome = evaluate_attempt(
            def_.evaluate, p, trial_seed, options_.trial_timeout_seconds);
        if (outcome.timed_out) {
          record.status = TrialStatus::TimedOut;
          record.error = "evaluation exceeded the " +
                         std::to_string(options_.trial_timeout_seconds) +
                         "s trial timeout";
          failures[i] = std::make_exception_ptr(Error(
              "trial " + std::to_string(p.trial_id) + ": " + record.error));
        } else if (outcome.error) {
          record.status = TrialStatus::Failed;
          record.error = describe_exception(outcome.error);
          failures[i] = outcome.error;
        } else {
          record.status = TrialStatus::Ok;
          record.error.clear();
          record.metrics = std::move(outcome.metrics);
          failures[i] = nullptr;
        }
        if (record.ok()) break;
        // Failure-annotated span: a zero-length marker keyed by trial and
        // attempt, so traces show where a campaign lost time to faults.
        {
          obs::SpanScope failure_span(
              record.status == TrialStatus::TimedOut ? "trial.timeout"
                                                     : "trial.failure",
              "trial", static_cast<std::int64_t>(p.trial_id), "attempt",
              static_cast<std::int64_t>(attempt + 1));
        }
      }
      record.wall_seconds = sw.seconds();
      if (obs::metrics_enabled()) {
        static obs::Histogram& eval_hist = obs::Registry::global().histogram(
            "study.trial_eval_s", {0.1, 1.0, 10.0, 60.0, 600.0});
        eval_hist.observe(record.wall_seconds);
      }
      if (record.ok()) {
        DARL_COUNTER_ADD("study.trials_done", 1);
      } else {
        DARL_COUNTER_ADD("study.trials_failed", 1);
      }
      records[i] = std::move(record);
    };
    if (batch.size() == 1) {
      evaluate_one(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        threads.emplace_back(evaluate_one, i);
      }
      for (auto& t : threads) t.join();
    }

    // Record and report feedback in proposal order (deterministic
    // regardless of evaluation scheduling). The whole batch is recorded
    // even when a failure aborts the study, so finished work survives.
    std::exception_ptr abort_error;
    for (std::size_t i = 0; i < records.size(); ++i) {
      TrialRecord& record = records[i];
      if (record.ok()) {
        try {
          (void)def_.metrics.extract(record.metrics);  // validate completeness
        } catch (...) {
          record.status = TrialStatus::Failed;
          record.error = describe_exception(std::current_exception());
          record.metrics.clear();
          failures[i] = std::current_exception();
          DARL_COUNTER_ADD("study.trials_failed", 1);
        }
      }
      if (record.ok()) {
        explorer_->tell(record.id, record.metrics);
      } else {
        if (options_.log_progress) {
          DARL_LOG_WARN << "study '" << def_.name << "': trial " << record.id
                        << " " << trial_status_name(record.status) << " after "
                        << record.attempts << " attempt(s): " << record.error;
        }
        // Feed the flight recorder and flush its rings to the configured
        // dump path: the last K events of every thread — spans, warnings,
        // this note — become the post-mortem for the faulted trial.
        if (obs::flight_enabled()) {
          obs::flight_note("trial_failure",
                           "trial " + std::to_string(record.id) + " " +
                               trial_status_name(record.status) + ": " +
                               record.error);
          if (!obs::flight_dump_path().empty()) {
            obs::flight_dump_to_path(obs::flight_dump_path());
          }
        }
        explorer_->tell_failure(record.id);
        if (options_.on_trial_failure == FailurePolicy::Abort && !abort_error) {
          abort_error = failures[i];
        }
      }
      trials_.push_back(std::move(record));
    }
    if (abort_error) std::rethrow_exception(abort_error);
  }
}

std::size_t Study::failed_trials() const {
  std::size_t n = 0;
  for (const auto& t : trials_) {
    if (!t.ok()) ++n;
  }
  return n;
}

std::vector<std::vector<double>> Study::metric_table() const {
  std::vector<std::vector<double>> table;
  table.reserve(trials_.size());
  for (const auto& t : trials_) {
    if (t.ok()) table.push_back(def_.metrics.extract(t.metrics));
  }
  return table;
}

std::vector<std::vector<double>> Study::full_budget_metric_table(
    std::vector<std::size_t>& indices) const {
  indices.clear();
  std::vector<std::vector<double>> table;
  for (std::size_t i = 0; i < trials_.size(); ++i) {
    if (trials_[i].ok() && trials_[i].budget_fraction >= 1.0) {
      indices.push_back(i);
      table.push_back(def_.metrics.extract(trials_[i].metrics));
    }
  }
  return table;
}

std::vector<std::size_t> Study::pareto_trials(
    const std::vector<std::string>& metric_names) const {
  std::vector<std::string> names = metric_names;
  if (names.empty()) {
    for (const auto& d : def_.metrics.defs()) names.push_back(d.name);
  }
  std::vector<Sense> senses;
  senses.reserve(names.size());
  for (const auto& n : names) senses.push_back(def_.metrics.def(n).sense);

  std::vector<std::size_t> indices;
  std::vector<std::vector<double>> points;
  for (std::size_t i = 0; i < trials_.size(); ++i) {
    if (!trials_[i].ok() || trials_[i].budget_fraction < 1.0) continue;
    std::vector<double> p;
    p.reserve(names.size());
    for (const auto& n : names) {
      const auto it = trials_[i].metrics.find(n);
      DARL_CHECK(it != trials_[i].metrics.end(),
                 "trial " << trials_[i].id << " missing metric '" << n << "'");
      p.push_back(it->second);
    }
    indices.push_back(i);
    points.push_back(std::move(p));
  }
  const auto front = pareto_front(points, senses);
  std::vector<std::size_t> out;
  out.reserve(front.size());
  for (std::size_t f : front) out.push_back(indices[f]);
  return out;
}

}  // namespace darl::core
