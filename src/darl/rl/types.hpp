// darl/rl/types.hpp
//
// Shared data types of the RL substrate: transitions collected by rollout
// workers, per-worker batches handed to the learner, and training
// statistics (including the simulated-compute accounting the cluster model
// consumes).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "darl/linalg/vec.hpp"

namespace darl::rl {

/// One environment transition as recorded by a rollout worker.
struct Transition {
  Vec obs;
  Vec action;      ///< env-encoded action (see env::ActionSpace)
  double reward = 0.0;
  Vec next_obs;
  bool terminated = false;  ///< true terminal state (no bootstrap)
  bool truncated = false;   ///< episode cut (bootstrap from next_obs)
  double log_prob = 0.0;    ///< log pi(action|obs) under the *acting* policy

  bool done() const { return terminated || truncated; }
};

/// The transitions one worker collected during one iteration.
struct WorkerBatch {
  std::size_t worker_id = 0;
  std::vector<Transition> transitions;
};

/// Output of a single policy inference during collection.
struct ActOutput {
  Vec action;
  double log_prob = 0.0;
};

/// Statistics of one learner update cycle.
struct TrainStats {
  std::size_t samples = 0;        ///< transitions consumed
  std::size_t gradient_steps = 0; ///< optimizer steps performed
  double policy_loss = 0.0;
  double value_loss = 0.0;
  double entropy = 0.0;
  /// Simulated compute cost of the update in MFLOP-equivalents, charged to
  /// the learner node by the cluster model.
  double train_cost_mflop = 0.0;
};

/// The learning algorithms: PPO and SAC are the two the paper studies
/// (§V-b); IMPALA/V-trace is provided as the §II-A architecture extension.
enum class AlgoKind { PPO, SAC, IMPALA };

/// Name for reports ("PPO"/"SAC").
const char* algo_name(AlgoKind kind);

}  // namespace darl::rl
