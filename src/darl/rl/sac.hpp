// darl/rl/sac.hpp
//
// Soft Actor-Critic (Haarnoja et al. 2018), the second algorithm of the
// paper's study: off-policy maximum-entropy RL with twin Q critics, target
// networks, a tanh-squashed Gaussian policy and automatic entropy
// temperature tuning. Continuous action spaces only (the airdrop simulator
// exposes a continuous steering mode for exactly this reason).

#pragma once

#include <memory>

#include "darl/common/rng.hpp"
#include "darl/nn/distributions.hpp"
#include "darl/nn/mlp.hpp"
#include "darl/nn/optimizer.hpp"
#include "darl/rl/algorithm.hpp"
#include "darl/rl/prioritized_replay.hpp"
#include "darl/rl/replay_buffer.hpp"

namespace darl::rl {

/// SAC hyperparameters (defaults follow the original paper, scaled down
/// for the small networks and budgets used here).
struct SacConfig {
  std::vector<std::size_t> hidden = {64, 64};
  double learning_rate = 3e-4;
  double gamma = 0.99;
  double tau = 0.005;             ///< polyak averaging rate for targets
  std::size_t batch_size = 64;
  std::size_t replay_capacity = 200000;
  std::size_t warmup_steps = 256; ///< uniform-random acting before learning
  /// Gradient updates per collected environment step (0.5 = one update
  /// every two steps).
  double updates_per_step = 0.5;
  /// Entropy target for temperature auto-tuning; 0 means "-action_dim".
  double target_entropy = 0.0;
  double init_alpha = 0.2;
  double max_grad_norm = 10.0;
  /// Soft bounds for the state-dependent log-std head.
  double log_std_min = -5.0;
  double log_std_max = 2.0;
  /// Use proportional prioritized replay (the Ape-X ingredient, paper
  /// §II-A) instead of uniform sampling. Critic updates are corrected with
  /// importance-sampling weights and priorities track TD errors.
  bool prioritized_replay = false;
  double per_alpha = 0.6;  ///< priority shaping exponent
  double per_beta = 0.4;   ///< importance-sampling correction exponent
};

/// SAC learner. See Algorithm for the learner/actor role split.
class SacAlgorithm final : public Algorithm {
 public:
  /// Requires a continuous (Box) action space.
  SacAlgorithm(std::size_t obs_dim, env::ActionSpace action_space,
               SacConfig config, std::uint64_t seed);

  AlgoKind kind() const override { return AlgoKind::SAC; }
  std::unique_ptr<RolloutActor> make_actor() const override;
  Vec policy_params() const override;
  std::size_t params_bytes() const override;
  std::size_t transition_bytes() const override;
  TrainStats train(const std::vector<WorkerBatch>& batches) override;

  const SacConfig& config() const { return config_; }
  double alpha() const;
  std::size_t replay_size() const {
    return per_ ? per_->size() : replay_.size();
  }

  /// Q-value estimate min(Q1, Q2)(obs, squashed_action) for tests.
  double q_value(const Vec& obs, const Vec& squashed_action);

 private:
  /// Split an actor head output into mean and softly clamped log-std.
  void split_head(const Vec& head, Vec& mean, Vec& log_std) const;

  void polyak_update();
  void one_update(TrainStats& stats);

  std::size_t obs_dim_;
  std::size_t act_dim_;
  env::ActionSpace action_space_;
  SacConfig config_;
  Rng rng_;

  nn::Mlp actor_;    // obs -> [mean, raw_log_std]
  nn::Mlp q1_, q2_;  // [obs, action] -> scalar
  nn::Mlp q1_target_, q2_target_;
  Vec log_alpha_, log_alpha_grad_;
  std::unique_ptr<nn::Adam> actor_opt_, q1_opt_, q2_opt_, alpha_opt_;
  ReplayBuffer replay_;
  std::unique_ptr<PrioritizedReplayBuffer> per_;
  double update_carry_ = 0.0;
  double target_entropy_ = 0.0;

  // Reusable batched-kernel staging buffers: observation / [obs, action]
  // rows, output-gradient rows, and per-sample draw storage. Capacity
  // settles at the configured batch size, after which one_update() stops
  // allocating in the network hot path.
  Matrix mb_obs_, mb_qin_, mb_d1_, mb_d2_, mb_dhead_, mb_ga_;
  Matrix grp_qin_, grp_dy_;
  std::vector<std::size_t> nonterm_idx_, grp1_idx_, grp2_idx_;
  std::vector<nn::SquashedGaussian::Draw> draws_;
  std::vector<Vec> means_, log_stds_;
  std::vector<double> tgt_logp_;
  Vec head_scratch_, mean_scratch_, log_std_scratch_;
  Vec d_mean_, d_log_std_, grad_action_;
};

}  // namespace darl::rl
