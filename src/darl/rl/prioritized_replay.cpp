#include "darl/rl/prioritized_replay.hpp"

#include <algorithm>
#include <cmath>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"

namespace darl::rl {

SumTree::SumTree(std::size_t capacity) : capacity_(capacity) {
  DARL_CHECK(capacity > 0, "sum tree needs positive capacity");
  leaves_ = 1;
  while (leaves_ < capacity_) leaves_ *= 2;
  tree_.assign(2 * leaves_, 0.0);
}

void SumTree::set(std::size_t index, double value) {
  DARL_CHECK(index < capacity_, "leaf " << index << " out of " << capacity_);
  DARL_CHECK(value >= 0.0 && std::isfinite(value),
             "leaf value must be finite and non-negative, got " << value);
  std::size_t node = leaves_ + index;
  tree_[node] = value;
  for (node /= 2; node >= 1; node /= 2) {
    tree_[node] = tree_[2 * node] + tree_[2 * node + 1];
    if (node == 1) break;
  }
}

double SumTree::get(std::size_t index) const {
  DARL_CHECK(index < capacity_, "leaf " << index << " out of " << capacity_);
  return tree_[leaves_ + index];
}

double SumTree::total() const { return tree_[1]; }

double SumTree::max_value() const {
  double m = 0.0;
  for (std::size_t i = 0; i < capacity_; ++i) m = std::max(m, tree_[leaves_ + i]);
  return m;
}

std::size_t SumTree::sample(double prefix) const {
  DARL_CHECK(total() > 0.0, "sampling from an empty sum tree");
  prefix = std::clamp(prefix, 0.0, std::nextafter(total(), 0.0));
  std::size_t node = 1;
  while (node < leaves_) {
    const std::size_t left = 2 * node;
    if (prefix < tree_[left]) {
      node = left;
    } else {
      prefix -= tree_[left];
      node = left + 1;
    }
  }
  const std::size_t leaf = node - leaves_;
  // Zero-weight leaves at the padded tail cannot be reached because the
  // prefix is clamped below total(); clamp defensively anyway.
  return std::min(leaf, capacity_ - 1);
}

PrioritizedReplayBuffer::PrioritizedReplayBuffer(std::size_t capacity,
                                                 double alpha, double epsilon)
    : capacity_(capacity),
      alpha_(alpha),
      epsilon_(epsilon),
      tree_(capacity),
      raw_priority_(capacity, 0.0) {
  DARL_CHECK(capacity > 0, "replay capacity must be positive");
  DARL_CHECK(alpha >= 0.0 && alpha <= 1.0, "alpha out of [0,1]");
  DARL_CHECK(epsilon > 0.0, "epsilon must be positive");
  storage_.reserve(capacity);
}

void PrioritizedReplayBuffer::push(const Transition& t) {
  if (size_ < capacity_) {
    storage_.push_back(t);
    ++size_;
  } else {
    storage_[next_] = t;
  }
  raw_priority_[next_] = max_priority_;
  tree_.set(next_, std::pow(max_priority_ + epsilon_, alpha_));
  next_ = (next_ + 1) % capacity_;
}

PrioritizedBatch PrioritizedReplayBuffer::sample(std::size_t n, double beta,
                                                 Rng& rng) const {
  DARL_CHECK(!empty(), "sampling from an empty prioritized replay buffer");
  DARL_CHECK(beta >= 0.0 && beta <= 1.0, "beta out of [0,1]");
  PrioritizedBatch batch;
  batch.transitions.reserve(n);
  batch.indices.reserve(n);
  batch.weights.reserve(n);

  const double total = tree_.total();
  double max_weight = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = tree_.sample(rng.uniform(0.0, total));
    const double p = tree_.get(idx) / total;
    DARL_ASSERT(p > 0.0, "sampled a zero-probability slot");
    const double w =
        std::pow(1.0 / (static_cast<double>(size_) * p), beta);
    batch.transitions.push_back(&storage_[idx]);
    batch.indices.push_back(idx);
    batch.weights.push_back(w);
    max_weight = std::max(max_weight, w);
  }
  for (double& w : batch.weights) w /= max_weight;
  return batch;
}

void PrioritizedReplayBuffer::update_priorities(
    const std::vector<std::size_t>& indices,
    const std::vector<double>& priorities) {
  DARL_CHECK(indices.size() == priorities.size(),
             "indices/priorities size mismatch");
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t idx = indices[i];
    DARL_CHECK(idx < size_, "priority update for unused slot " << idx);
    const double p = std::abs(priorities[i]);
    DARL_CHECK(std::isfinite(p), "non-finite priority");
    raw_priority_[idx] = p;
    tree_.set(idx, std::pow(p + epsilon_, alpha_));
    max_priority_ = std::max(max_priority_, p);
  }
}

double PrioritizedReplayBuffer::priority(std::size_t index) const {
  DARL_CHECK(index < size_, "priority query for unused slot " << index);
  return raw_priority_[index];
}

}  // namespace darl::rl
