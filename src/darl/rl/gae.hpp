// darl/rl/gae.hpp
//
// Generalized Advantage Estimation (Schulman et al. 2016) over a single
// worker stream of transitions. Pure functions, unit-tested against
// closed-form cases.

#pragma once

#include <vector>

#include "darl/rl/types.hpp"

namespace darl::rl {

/// Advantages and discounted returns for one stream.
struct GaeResult {
  std::vector<double> advantages;
  std::vector<double> returns;  ///< advantage + V(obs): the critic target
};

/// Compute GAE(gamma, lambda) over `stream` (time-ordered transitions from
/// one worker, possibly spanning several episodes).
///
/// `values[t]` must be V(stream[t].obs) and `bootstrap_values[t]` must be
/// V(stream[t].next_obs) (only read where a bootstrap is needed: at
/// truncated transitions and at the final transition of the stream when it
/// is not terminated). The lambda-accumulator resets across episode
/// boundaries (done transitions).
GaeResult compute_gae(const std::vector<Transition>& stream,
                      const std::vector<double>& values,
                      const std::vector<double>& bootstrap_values, double gamma,
                      double lambda);

/// Normalize advantages to zero mean / unit standard deviation in place
/// (no-op for fewer than two elements or ~zero variance).
void normalize_advantages(std::vector<double>& advantages);

}  // namespace darl::rl
