// darl/rl/algorithm.hpp
//
// The learner/actor split every distributed-RL architecture in the paper is
// built from (A3C/IMPALA/Ape-X separate acting from learning; RLlib,
// Stable Baselines and TF-Agents are orchestrations of exactly these two
// roles). A framework backend owns the orchestration: it creates
// RolloutActors for its workers, decides when and with which parameter
// snapshot they act (fresh or stale), and feeds collected WorkerBatches to
// Algorithm::train().

#pragma once

#include <memory>

#include "darl/common/error.hpp"
#include "darl/env/space.hpp"
#include "darl/rl/types.hpp"

namespace darl::rl {

/// A lightweight inference-only copy of the policy used by one rollout
/// worker. Not thread-safe internally; each worker owns one instance and
/// its own Rng.
class RolloutActor {
 public:
  virtual ~RolloutActor() = default;

  /// Replace the actor's parameters with a snapshot obtained from
  /// Algorithm::policy_params().
  virtual void set_params(const Vec& flat) = 0;

  /// Sample an action (env encoding) and its log-probability.
  virtual ActOutput act(const Vec& obs, Rng& rng) = 0;

  /// Batched act() over one observation per entry. Consumes rng draws in
  /// ascending index order, so the results (and the rng stream afterwards)
  /// are identical to calling act() sequentially. `out` must be pre-sized
  /// to obs.size(); implementations write into it without allocating. The
  /// default loops act(); batched policies override it to amortize the
  /// network evaluation over the whole batch.
  virtual void act_batch(const std::vector<Vec>& obs, Rng& rng,
                         std::vector<ActOutput>& out) {
    DARL_CHECK(out.size() == obs.size(),
               "act_batch: out has " << out.size() << " slots for "
                                     << obs.size() << " observations");
    for (std::size_t i = 0; i < obs.size(); ++i) out[i] = act(obs[i], rng);
  }

  /// Deterministic (greedy/mode) action for evaluation.
  virtual Vec act_greedy(const Vec& obs) = 0;

  /// Simulated inference cost for one act() in MFLOP-equivalents.
  virtual double inference_cost_mflop() const = 0;
};

/// A learning algorithm (PPO or SAC): consumes worker batches, updates its
/// networks, and exports policy-parameter snapshots for the actors.
class Algorithm {
 public:
  virtual ~Algorithm() = default;

  virtual AlgoKind kind() const = 0;

  /// Create an inference-only actor initialized with the current policy.
  virtual std::unique_ptr<RolloutActor> make_actor() const = 0;

  /// Snapshot of the current policy parameters (flat).
  virtual Vec policy_params() const = 0;

  /// Size of one policy-parameter snapshot in bytes (network transfer
  /// accounting for multi-node deployments).
  virtual std::size_t params_bytes() const = 0;

  /// Approximate size of one serialized transition in bytes (sample
  /// transfer accounting).
  virtual std::size_t transition_bytes() const = 0;

  /// Consume one iteration's worth of collected experience and update.
  virtual TrainStats train(const std::vector<WorkerBatch>& batches) = 0;
};

}  // namespace darl::rl
