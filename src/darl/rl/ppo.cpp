#include "darl/rl/ppo.hpp"

#include <algorithm>
#include <cmath>

#include "darl/common/error.hpp"
#include "darl/nn/distributions.hpp"
#include "darl/rl/gae.hpp"

namespace darl::rl {
namespace {

std::vector<std::size_t> actor_sizes(std::size_t obs_dim,
                                     const env::ActionSpace& space,
                                     const std::vector<std::size_t>& hidden) {
  std::vector<std::size_t> sizes;
  sizes.push_back(obs_dim);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(space.is_discrete() ? space.discrete().n() : space.box().dim());
  return sizes;
}

std::vector<std::size_t> critic_sizes(std::size_t obs_dim,
                                      const std::vector<std::size_t>& hidden) {
  std::vector<std::size_t> sizes;
  sizes.push_back(obs_dim);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(1);
  return sizes;
}

/// Inference-only PPO policy used by rollout workers.
class PpoActor final : public RolloutActor {
 public:
  PpoActor(const nn::Mlp& actor, Vec log_std, env::ActionSpace space,
           std::uint64_t rng_seed)
      : net_(actor),  // copy
        log_std_(std::move(log_std)),
        space_(std::move(space)),
        scratch_rng_(rng_seed) {}

  void set_params(const Vec& flat) override {
    const std::size_t net_n = net_.param_count();
    DARL_CHECK(flat.size() == net_n + log_std_.size(),
               "PPO actor snapshot has " << flat.size() << " values, expected "
                                         << net_n + log_std_.size());
    Vec net_part(flat.begin(), flat.begin() + static_cast<std::ptrdiff_t>(net_n));
    net_.set_flat_params(net_part);
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(net_n), flat.end(),
              log_std_.begin());
  }

  ActOutput act(const Vec& obs, Rng& rng) override {
    const Vec head = net_.evaluate(obs);
    return sample_from_head(head, rng);
  }

  void act_batch(const std::vector<Vec>& obs, Rng& rng,
                 std::vector<ActOutput>& out) override {
    DARL_CHECK(out.size() == obs.size(),
               "act_batch: out has " << out.size() << " slots for "
                                     << obs.size() << " observations");
    if (obs.empty()) return;
    obs_mat_.reshape(obs.size(), net_.input_dim());
    for (std::size_t i = 0; i < obs.size(); ++i) {
      std::copy(obs[i].begin(), obs[i].end(), obs_mat_.row(i));
    }
    const Matrix& heads = net_.evaluate_batch(obs_mat_);
    for (std::size_t i = 0; i < obs.size(); ++i) {
      head_scratch_.assign(heads.row(i), heads.row(i) + net_.output_dim());
      out[i] = sample_from_head(head_scratch_, rng);
    }
  }

  Vec act_greedy(const Vec& obs) override {
    const Vec head = net_.evaluate(obs);
    if (space_.is_discrete()) {
      const Vec p = nn::Categorical::softmax(head);
      const auto it = std::max_element(p.begin(), p.end());
      return space_.discrete().encode(
          static_cast<std::size_t>(it - p.begin()));
    }
    return space_.box().clip(head);
  }

  double inference_cost_mflop() const override {
    return net_.flops_per_forward() / 1e6;
  }

 private:
  /// Shared sampling math for act()/act_batch(): one policy-head vector in,
  /// one sampled action out.
  ActOutput sample_from_head(const Vec& head, Rng& rng) {
    ActOutput out;
    if (space_.is_discrete()) {
      const std::size_t a = nn::Categorical::sample(head, rng);
      out.action = space_.discrete().encode(a);
      out.log_prob = nn::Categorical::log_prob(head, a);
    } else {
      const Vec raw = nn::DiagGaussian::sample(head, log_std_, rng);
      out.log_prob = nn::DiagGaussian::log_prob(head, log_std_, raw);
      out.action = space_.box().clip(raw);
      // log_prob intentionally refers to the unclipped draw (standard
      // practice: the clip is part of the environment interface).
    }
    return out;
  }

  nn::Mlp net_;
  Vec log_std_;
  env::ActionSpace space_;
  Rng scratch_rng_;  // reserved for actor-local stochasticity
  Matrix obs_mat_;   // act_batch staging rows
  Vec head_scratch_;
};

}  // namespace

PpoAlgorithm::PpoAlgorithm(std::size_t obs_dim, env::ActionSpace action_space,
                           PpoConfig config, std::uint64_t seed)
    : obs_dim_(obs_dim),
      action_space_(std::move(action_space)),
      config_(std::move(config)),
      rng_(seed),
      actor_([&] {
        Rng init = rng_.split(1);
        return nn::Mlp(actor_sizes(obs_dim, action_space_, config_.hidden),
                       nn::Activation::Tanh, init);
      }()),
      critic_([&] {
        Rng init = rng_.split(2);
        return nn::Mlp(critic_sizes(obs_dim, config_.hidden),
                       nn::Activation::Tanh, init);
      }()) {
  DARL_CHECK(obs_dim > 0, "obs_dim must be positive");
  DARL_CHECK(config_.epochs > 0 && config_.minibatch_size > 0,
             "epochs and minibatch_size must be positive");
  DARL_CHECK(config_.clip_epsilon > 0.0 && config_.clip_epsilon < 1.0,
             "clip_epsilon out of (0,1)");

  if (action_space_.is_box()) {
    log_std_.assign(action_space_.box().dim(), config_.log_std_init);
    log_std_grad_.assign(log_std_.size(), 0.0);
  }

  auto actor_params = actor_.params();
  if (!log_std_.empty()) {
    actor_params.push_back(nn::ParamRef{&log_std_, &log_std_grad_, "log_std"});
  }
  actor_opt_ = std::make_unique<nn::Adam>(actor_params, config_.learning_rate);
  critic_opt_ = std::make_unique<nn::Adam>(critic_.params(), config_.learning_rate);
}

std::unique_ptr<RolloutActor> PpoAlgorithm::make_actor() const {
  return std::make_unique<PpoActor>(actor_, log_std_, action_space_,
                                    rng_.seed() ^ 0xAC7012Full);
}

Vec PpoAlgorithm::policy_params() const {
  Vec flat = actor_.get_flat_params();
  flat.insert(flat.end(), log_std_.begin(), log_std_.end());
  return flat;
}

std::size_t PpoAlgorithm::params_bytes() const {
  return (actor_.param_count() + log_std_.size()) * sizeof(double);
}

std::size_t PpoAlgorithm::transition_bytes() const {
  // obs + next_obs + action + scalars, in doubles.
  return (2 * obs_dim_ + action_space_.action_dim() + 4) * sizeof(double);
}

double PpoAlgorithm::value(const Vec& obs) const {
  return critic_.evaluate(obs)[0];
}

TrainStats PpoAlgorithm::train(const std::vector<WorkerBatch>& batches) {
  TrainStats stats;

  // 1) GAE per worker stream with the current critic, evaluated as one
  // batched pass per stream (bitwise identical to the per-sample loop).
  std::vector<Sample> samples;
  double value_evals = 0.0;
  for (const auto& batch : batches) {
    const auto& stream = batch.transitions;
    if (stream.empty()) continue;
    std::vector<double> values(stream.size());
    std::vector<double> boots(stream.size());
    gae_obs_.reshape(stream.size(), obs_dim_);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      std::copy(stream[i].obs.begin(), stream[i].obs.end(), gae_obs_.row(i));
    }
    {
      const Matrix& v = critic_.evaluate_batch(gae_obs_);
      for (std::size_t i = 0; i < stream.size(); ++i) values[i] = v(i, 0);
    }
    // V(next_obs) is only read at stream ends and truncations; computing
    // it from values[i+1] when possible halves the critic evaluations.
    boot_idx_.clear();
    for (std::size_t i = 0; i < stream.size(); ++i) {
      boots[i] = 0.0;
      if (i + 1 < stream.size() && !stream[i].done()) continue;
      if (!stream[i].terminated) boot_idx_.push_back(i);
      value_evals += 1.0;
    }
    if (!boot_idx_.empty()) {
      gae_obs_.reshape(boot_idx_.size(), obs_dim_);
      for (std::size_t k = 0; k < boot_idx_.size(); ++k) {
        const Vec& nobs = stream[boot_idx_[k]].next_obs;
        std::copy(nobs.begin(), nobs.end(), gae_obs_.row(k));
      }
      const Matrix& v = critic_.evaluate_batch(gae_obs_);
      for (std::size_t k = 0; k < boot_idx_.size(); ++k)
        boots[boot_idx_[k]] = v(k, 0);
    }
    for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
      if (!stream[i].done()) boots[i] = values[i + 1];
    }
    value_evals += static_cast<double>(stream.size());

    const GaeResult gae = compute_gae(stream, values, boots, config_.gamma,
                                      config_.gae_lambda);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      samples.push_back(Sample{&stream[i], gae.advantages[i], gae.returns[i]});
    }
  }
  if (samples.empty()) return stats;
  stats.samples = samples.size();

  if (config_.normalize_advantages) {
    std::vector<double> advs(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) advs[i] = samples[i].advantage;
    normalize_advantages(advs);
    for (std::size_t i = 0; i < samples.size(); ++i) samples[i].advantage = advs[i];
  }

  // 2) Minibatch epochs.
  double kl_sum = 0.0;
  std::size_t kl_count = 0;
  double policy_loss_sum = 0.0, value_loss_sum = 0.0, entropy_sum = 0.0;
  std::size_t loss_count = 0;
  bool stop = false;

  for (std::size_t epoch = 0; epoch < config_.epochs && !stop; ++epoch) {
    const auto perm = rng_.permutation(samples.size());
    for (std::size_t start = 0; start < perm.size() && !stop;
         start += config_.minibatch_size) {
      const std::size_t end = std::min(start + config_.minibatch_size, perm.size());
      const double scale = 1.0 / static_cast<double>(end - start);

      actor_.zero_grad();
      std::fill(log_std_grad_.begin(), log_std_grad_.end(), 0.0);
      critic_.zero_grad();

      // Assemble the minibatch observations once and run both networks
      // through the batched kernels; the per-sample loop below only does
      // the distribution math and fills the output-gradient rows. All
      // scalar accumulators keep their ascending-sample summation order,
      // so the stats match the old per-sample loop bit for bit.
      const std::size_t mb = end - start;
      mb_obs_.reshape(mb, obs_dim_);
      for (std::size_t k = 0; k < mb; ++k) {
        const Vec& obs = samples[perm[start + k]].t->obs;
        std::copy(obs.begin(), obs.end(), mb_obs_.row(k));
      }
      const Matrix& heads = actor_.forward_batch(mb_obs_);
      const Matrix& vals = critic_.forward_batch(mb_obs_);
      const std::size_t head_dim = actor_.output_dim();
      mb_dhead_.reshape(mb, head_dim);
      mb_dv_.reshape(mb, 1);

      double mb_kl = 0.0;
      for (std::size_t k = 0; k < mb; ++k) {
        const Sample& s = samples[perm[start + k]];
        const Transition& tr = *s.t;
        head_scratch_.assign(heads.row(k), heads.row(k) + head_dim);
        double* d_head = mb_dhead_.row(k);
        double log_prob = 0.0;
        double entropy = 0.0;

        const double lo = 1.0 - config_.clip_epsilon;
        const double hi = 1.0 + config_.clip_epsilon;
        if (action_space_.is_discrete()) {
          const std::size_t a = action_space_.discrete().decode(tr.action);
          log_prob = nn::Categorical::log_prob(head_scratch_, a);
          entropy = nn::Categorical::entropy(head_scratch_);

          const double ratio = std::exp(log_prob - tr.log_prob);
          const double unclipped = ratio * s.advantage;
          const double clipped = std::clamp(ratio, lo, hi) * s.advantage;
          // Gradient of -min(unclipped, clipped) w.r.t. logp flows through
          // the ratio only when the active branch is differentiable in it.
          double d_logp = 0.0;
          if (unclipped <= clipped || (ratio >= lo && ratio <= hi)) {
            d_logp = -s.advantage * ratio;
          }
          const Vec g_logp = nn::Categorical::log_prob_grad(head_scratch_, a);
          const Vec g_ent = nn::Categorical::entropy_grad(head_scratch_);
          for (std::size_t i = 0; i < head_dim; ++i) {
            d_head[i] =
                scale * (d_logp * g_logp[i] - config_.entropy_coef * g_ent[i]);
          }
        } else {
          log_prob = nn::DiagGaussian::log_prob(head_scratch_, log_std_, tr.action);
          entropy = nn::DiagGaussian::entropy(log_std_);

          const double ratio = std::exp(log_prob - tr.log_prob);
          const double unclipped = ratio * s.advantage;
          const double clipped = std::clamp(ratio, lo, hi) * s.advantage;
          double d_logp = 0.0;
          if (unclipped <= clipped || (ratio >= lo && ratio <= hi)) {
            d_logp = -s.advantage * ratio;
          }
          nn::DiagGaussian::log_prob_grad(head_scratch_, log_std_, tr.action,
                                          d_mean_, d_log_std_);
          for (std::size_t i = 0; i < head_dim; ++i) {
            d_head[i] = scale * d_logp * d_mean_[i];
            // Entropy of a Gaussian is independent of the mean; bonus flows
            // into log_std only (d entropy / d log_std = 1).
            log_std_grad_[i] +=
                scale * (d_logp * d_log_std_[i] - config_.entropy_coef);
          }
        }

        const double ratio_log = log_prob - tr.log_prob;
        mb_kl += (std::exp(ratio_log) - 1.0) - ratio_log;  // k3 estimator
        const double ratio = std::exp(ratio_log);
        const double unclipped = ratio * s.advantage;
        const double clipped = std::clamp(ratio, lo, hi) * s.advantage;
        policy_loss_sum += -std::min(unclipped, clipped);
        entropy_sum += entropy;

        // Critic target on the same minibatch.
        const double v = vals(k, 0);
        const double verr = v - s.ret;
        value_loss_sum += 0.5 * verr * verr;
        mb_dv_.row(k)[0] = scale * config_.value_coef * verr;
        ++loss_count;
      }
      actor_.backward_batch(mb_dhead_);
      critic_.backward_batch(mb_dv_);

      auto actor_params = actor_.params();
      if (!log_std_.empty())
        actor_params.push_back(nn::ParamRef{&log_std_, &log_std_grad_, "log_std"});
      nn::clip_grad_norm(actor_params, config_.max_grad_norm);
      nn::clip_grad_norm(critic_.params(), config_.max_grad_norm);
      actor_opt_->step();
      critic_opt_->step();
      ++stats.gradient_steps;

      mb_kl /= static_cast<double>(end - start);
      kl_sum += mb_kl;
      ++kl_count;
      if (config_.target_kl > 0.0 && mb_kl > 1.5 * config_.target_kl) {
        stop = true;  // early stop as in Stable Baselines
      }
    }
  }

  last_kl_ = kl_count ? kl_sum / static_cast<double>(kl_count) : 0.0;
  if (loss_count > 0) {
    stats.policy_loss = policy_loss_sum / static_cast<double>(loss_count);
    stats.value_loss = value_loss_sum / static_cast<double>(loss_count);
    stats.entropy = entropy_sum / static_cast<double>(loss_count);
  }

  // 3) Simulated compute cost: GAE value evaluations plus one forward and
  // one backward (2x forward) per sample visit on both networks.
  const double af = actor_.flops_per_forward();
  const double cf = critic_.flops_per_forward();
  const double visits = static_cast<double>(loss_count);
  stats.train_cost_mflop =
      (value_evals * cf + visits * 3.0 * (af + cf)) / 1e6;
  return stats;
}

}  // namespace darl::rl
