#include "darl/rl/ppo.hpp"

#include <algorithm>
#include <cmath>

#include "darl/common/error.hpp"
#include "darl/nn/distributions.hpp"
#include "darl/rl/gae.hpp"

namespace darl::rl {
namespace {

std::vector<std::size_t> actor_sizes(std::size_t obs_dim,
                                     const env::ActionSpace& space,
                                     const std::vector<std::size_t>& hidden) {
  std::vector<std::size_t> sizes;
  sizes.push_back(obs_dim);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(space.is_discrete() ? space.discrete().n() : space.box().dim());
  return sizes;
}

std::vector<std::size_t> critic_sizes(std::size_t obs_dim,
                                      const std::vector<std::size_t>& hidden) {
  std::vector<std::size_t> sizes;
  sizes.push_back(obs_dim);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(1);
  return sizes;
}

/// Inference-only PPO policy used by rollout workers.
class PpoActor final : public RolloutActor {
 public:
  PpoActor(const nn::Mlp& actor, Vec log_std, env::ActionSpace space,
           std::uint64_t rng_seed)
      : net_(actor),  // copy
        log_std_(std::move(log_std)),
        space_(std::move(space)),
        scratch_rng_(rng_seed) {}

  void set_params(const Vec& flat) override {
    const std::size_t net_n = net_.param_count();
    DARL_CHECK(flat.size() == net_n + log_std_.size(),
               "PPO actor snapshot has " << flat.size() << " values, expected "
                                         << net_n + log_std_.size());
    Vec net_part(flat.begin(), flat.begin() + static_cast<std::ptrdiff_t>(net_n));
    net_.set_flat_params(net_part);
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(net_n), flat.end(),
              log_std_.begin());
  }

  ActOutput act(const Vec& obs, Rng& rng) override {
    const Vec head = net_.evaluate(obs);
    ActOutput out;
    if (space_.is_discrete()) {
      const std::size_t a = nn::Categorical::sample(head, rng);
      out.action = space_.discrete().encode(a);
      out.log_prob = nn::Categorical::log_prob(head, a);
    } else {
      const Vec raw = nn::DiagGaussian::sample(head, log_std_, rng);
      out.log_prob = nn::DiagGaussian::log_prob(head, log_std_, raw);
      out.action = space_.box().clip(raw);
      // log_prob intentionally refers to the unclipped draw (standard
      // practice: the clip is part of the environment interface).
    }
    return out;
  }

  Vec act_greedy(const Vec& obs) override {
    const Vec head = net_.evaluate(obs);
    if (space_.is_discrete()) {
      const Vec p = nn::Categorical::softmax(head);
      const auto it = std::max_element(p.begin(), p.end());
      return space_.discrete().encode(
          static_cast<std::size_t>(it - p.begin()));
    }
    return space_.box().clip(head);
  }

  double inference_cost_mflop() const override {
    return net_.flops_per_forward() / 1e6;
  }

 private:
  nn::Mlp net_;
  Vec log_std_;
  env::ActionSpace space_;
  Rng scratch_rng_;  // reserved for actor-local stochasticity
};

}  // namespace

PpoAlgorithm::PpoAlgorithm(std::size_t obs_dim, env::ActionSpace action_space,
                           PpoConfig config, std::uint64_t seed)
    : obs_dim_(obs_dim),
      action_space_(std::move(action_space)),
      config_(std::move(config)),
      rng_(seed),
      actor_([&] {
        Rng init = rng_.split(1);
        return nn::Mlp(actor_sizes(obs_dim, action_space_, config_.hidden),
                       nn::Activation::Tanh, init);
      }()),
      critic_([&] {
        Rng init = rng_.split(2);
        return nn::Mlp(critic_sizes(obs_dim, config_.hidden),
                       nn::Activation::Tanh, init);
      }()) {
  DARL_CHECK(obs_dim > 0, "obs_dim must be positive");
  DARL_CHECK(config_.epochs > 0 && config_.minibatch_size > 0,
             "epochs and minibatch_size must be positive");
  DARL_CHECK(config_.clip_epsilon > 0.0 && config_.clip_epsilon < 1.0,
             "clip_epsilon out of (0,1)");

  if (action_space_.is_box()) {
    log_std_.assign(action_space_.box().dim(), config_.log_std_init);
    log_std_grad_.assign(log_std_.size(), 0.0);
  }

  auto actor_params = actor_.params();
  if (!log_std_.empty()) {
    actor_params.push_back(nn::ParamRef{&log_std_, &log_std_grad_, "log_std"});
  }
  actor_opt_ = std::make_unique<nn::Adam>(actor_params, config_.learning_rate);
  critic_opt_ = std::make_unique<nn::Adam>(critic_.params(), config_.learning_rate);
}

std::unique_ptr<RolloutActor> PpoAlgorithm::make_actor() const {
  return std::make_unique<PpoActor>(actor_, log_std_, action_space_,
                                    rng_.seed() ^ 0xAC7012Full);
}

Vec PpoAlgorithm::policy_params() const {
  Vec flat = actor_.get_flat_params();
  flat.insert(flat.end(), log_std_.begin(), log_std_.end());
  return flat;
}

std::size_t PpoAlgorithm::params_bytes() const {
  return (actor_.param_count() + log_std_.size()) * sizeof(double);
}

std::size_t PpoAlgorithm::transition_bytes() const {
  // obs + next_obs + action + scalars, in doubles.
  return (2 * obs_dim_ + action_space_.action_dim() + 4) * sizeof(double);
}

double PpoAlgorithm::value(const Vec& obs) const {
  return critic_.evaluate(obs)[0];
}

PpoAlgorithm::PolicyEval PpoAlgorithm::policy_loss_backward(const Sample& s,
                                                            double scale) {
  const Transition& tr = *s.t;
  const Vec& head = actor_.forward(tr.obs);
  PolicyEval ev;
  Vec d_head(head.size(), 0.0);

  if (action_space_.is_discrete()) {
    const std::size_t a = action_space_.discrete().decode(tr.action);
    ev.log_prob = nn::Categorical::log_prob(head, a);
    ev.entropy = nn::Categorical::entropy(head);

    const double ratio = std::exp(ev.log_prob - tr.log_prob);
    const double lo = 1.0 - config_.clip_epsilon;
    const double hi = 1.0 + config_.clip_epsilon;
    const double unclipped = ratio * s.advantage;
    const double clipped = std::clamp(ratio, lo, hi) * s.advantage;
    // Gradient of -min(unclipped, clipped) w.r.t. logp flows through the
    // ratio only when the active branch is differentiable in it.
    double d_logp = 0.0;
    if (unclipped <= clipped || (ratio >= lo && ratio <= hi)) {
      d_logp = -s.advantage * ratio;
    }
    const Vec g_logp = nn::Categorical::log_prob_grad(head, a);
    const Vec g_ent = nn::Categorical::entropy_grad(head);
    for (std::size_t i = 0; i < head.size(); ++i) {
      d_head[i] = scale * (d_logp * g_logp[i] - config_.entropy_coef * g_ent[i]);
    }
    actor_.backward(d_head);
  } else {
    ev.log_prob = nn::DiagGaussian::log_prob(head, log_std_, tr.action);
    ev.entropy = nn::DiagGaussian::entropy(log_std_);

    const double ratio = std::exp(ev.log_prob - tr.log_prob);
    const double lo = 1.0 - config_.clip_epsilon;
    const double hi = 1.0 + config_.clip_epsilon;
    const double unclipped = ratio * s.advantage;
    const double clipped = std::clamp(ratio, lo, hi) * s.advantage;
    double d_logp = 0.0;
    if (unclipped <= clipped || (ratio >= lo && ratio <= hi)) {
      d_logp = -s.advantage * ratio;
    }
    Vec d_mean, d_log_std;
    nn::DiagGaussian::log_prob_grad(head, log_std_, tr.action, d_mean, d_log_std);
    for (std::size_t i = 0; i < head.size(); ++i) {
      d_head[i] = scale * d_logp * d_mean[i];
      // Entropy of a Gaussian is independent of the mean; bonus flows into
      // log_std only (d entropy / d log_std = 1).
      log_std_grad_[i] += scale * (d_logp * d_log_std[i] - config_.entropy_coef);
    }
    actor_.backward(d_head);
  }
  return ev;
}

TrainStats PpoAlgorithm::train(const std::vector<WorkerBatch>& batches) {
  TrainStats stats;

  // 1) GAE per worker stream with the current critic.
  std::vector<Sample> samples;
  double value_evals = 0.0;
  for (const auto& batch : batches) {
    const auto& stream = batch.transitions;
    if (stream.empty()) continue;
    std::vector<double> values(stream.size());
    std::vector<double> boots(stream.size());
    for (std::size_t i = 0; i < stream.size(); ++i) {
      values[i] = value(stream[i].obs);
      // V(next_obs) is only read at stream ends and truncations; computing
      // it from values[i+1] when possible halves the critic evaluations.
      if (i + 1 < stream.size() && !stream[i].done()) {
        boots[i] = 0.0;  // filled below from values[i+1]
      } else {
        boots[i] = stream[i].terminated ? 0.0 : value(stream[i].next_obs);
        value_evals += 1.0;
      }
    }
    for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
      if (!stream[i].done()) boots[i] = values[i + 1];
    }
    value_evals += static_cast<double>(stream.size());

    const GaeResult gae = compute_gae(stream, values, boots, config_.gamma,
                                      config_.gae_lambda);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      samples.push_back(Sample{&stream[i], gae.advantages[i], gae.returns[i]});
    }
  }
  if (samples.empty()) return stats;
  stats.samples = samples.size();

  if (config_.normalize_advantages) {
    std::vector<double> advs(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) advs[i] = samples[i].advantage;
    normalize_advantages(advs);
    for (std::size_t i = 0; i < samples.size(); ++i) samples[i].advantage = advs[i];
  }

  // 2) Minibatch epochs.
  double kl_sum = 0.0;
  std::size_t kl_count = 0;
  double policy_loss_sum = 0.0, value_loss_sum = 0.0, entropy_sum = 0.0;
  std::size_t loss_count = 0;
  bool stop = false;

  for (std::size_t epoch = 0; epoch < config_.epochs && !stop; ++epoch) {
    const auto perm = rng_.permutation(samples.size());
    for (std::size_t start = 0; start < perm.size() && !stop;
         start += config_.minibatch_size) {
      const std::size_t end = std::min(start + config_.minibatch_size, perm.size());
      const double scale = 1.0 / static_cast<double>(end - start);

      actor_.zero_grad();
      std::fill(log_std_grad_.begin(), log_std_grad_.end(), 0.0);
      critic_.zero_grad();

      double mb_kl = 0.0;
      for (std::size_t p = start; p < end; ++p) {
        const Sample& s = samples[perm[p]];
        const PolicyEval ev = policy_loss_backward(s, scale);

        const double ratio_log = ev.log_prob - s.t->log_prob;
        mb_kl += (std::exp(ratio_log) - 1.0) - ratio_log;  // k3 estimator
        const double ratio = std::exp(ratio_log);
        const double unclipped = ratio * s.advantage;
        const double clipped =
            std::clamp(ratio, 1.0 - config_.clip_epsilon,
                       1.0 + config_.clip_epsilon) *
            s.advantage;
        policy_loss_sum += -std::min(unclipped, clipped);
        entropy_sum += ev.entropy;

        // Critic step on the same minibatch.
        const double v = critic_.forward(s.t->obs)[0];
        const double verr = v - s.ret;
        value_loss_sum += 0.5 * verr * verr;
        critic_.backward(Vec{scale * config_.value_coef * verr});
        ++loss_count;
      }

      auto actor_params = actor_.params();
      if (!log_std_.empty())
        actor_params.push_back(nn::ParamRef{&log_std_, &log_std_grad_, "log_std"});
      nn::clip_grad_norm(actor_params, config_.max_grad_norm);
      nn::clip_grad_norm(critic_.params(), config_.max_grad_norm);
      actor_opt_->step();
      critic_opt_->step();
      ++stats.gradient_steps;

      mb_kl /= static_cast<double>(end - start);
      kl_sum += mb_kl;
      ++kl_count;
      if (config_.target_kl > 0.0 && mb_kl > 1.5 * config_.target_kl) {
        stop = true;  // early stop as in Stable Baselines
      }
    }
  }

  last_kl_ = kl_count ? kl_sum / static_cast<double>(kl_count) : 0.0;
  if (loss_count > 0) {
    stats.policy_loss = policy_loss_sum / static_cast<double>(loss_count);
    stats.value_loss = value_loss_sum / static_cast<double>(loss_count);
    stats.entropy = entropy_sum / static_cast<double>(loss_count);
  }

  // 3) Simulated compute cost: GAE value evaluations plus one forward and
  // one backward (2x forward) per sample visit on both networks.
  const double af = actor_.flops_per_forward();
  const double cf = critic_.flops_per_forward();
  const double visits = static_cast<double>(loss_count);
  stats.train_cost_mflop =
      (value_evals * cf + visits * 3.0 * (af + cf)) / 1e6;
  return stats;
}

}  // namespace darl::rl
