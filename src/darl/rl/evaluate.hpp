// darl/rl/evaluate.hpp
//
// Post-training policy evaluation: runs a trained policy for a number of
// episodes and reports the domain score (the paper's Reward metric is the
// landing score of the trained model, measured here over a fixed
// evaluation set rather than noisy training episodes).

#pragma once

#include <cstddef>

#include "darl/env/env.hpp"
#include "darl/rl/algorithm.hpp"

namespace darl::rl {

/// Aggregate outcome of an evaluation run.
struct EvalResult {
  double mean_score = 0.0;         ///< mean Env::episode_score (or reward sum)
  double mean_total_reward = 0.0;  ///< mean per-episode reward sum
  double mean_length = 0.0;        ///< mean episode length in steps
  std::size_t episodes = 0;
  double env_cost_units = 0.0;     ///< simulated env compute drained
  std::size_t inferences = 0;      ///< policy evaluations performed
};

/// Run `episodes` episodes of `actor` on `environment`. `stochastic`
/// selects sampled vs greedy actions. The environment is reset internally;
/// seed it beforehand for determinism.
EvalResult evaluate_policy(RolloutActor& actor, env::Env& environment,
                           std::size_t episodes, Rng& rng,
                           bool stochastic = true,
                           std::size_t max_steps_per_episode = 100000);

}  // namespace darl::rl
