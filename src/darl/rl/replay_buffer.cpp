#include "darl/rl/replay_buffer.hpp"

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"
#include "darl/obs/metrics.hpp"

namespace darl::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  DARL_CHECK(capacity > 0, "replay capacity must be positive");
  storage_.reserve(capacity);
}

void ReplayBuffer::push(const Transition& t) {
  if (size_ < capacity_) {
    storage_.push_back(t);
    ++size_;
  } else {
    storage_[next_] = t;
  }
  next_ = (next_ + 1) % capacity_;
  ++total_pushed_;
  DARL_COUNTER_ADD("replay.push", 1);
}

std::vector<const Transition*> ReplayBuffer::sample(std::size_t n,
                                                    Rng& rng) const {
  DARL_CHECK(!empty(), "sampling from an empty replay buffer");
  DARL_COUNTER_ADD("replay.sample", n);
  std::vector<const Transition*> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(&storage_[rng.index(size_)]);
  return out;
}

const Transition& ReplayBuffer::at(std::size_t index) const {
  DARL_CHECK(index < size_, "replay index " << index << " out of " << size_);
  return storage_[index];
}

}  // namespace darl::rl
