#include "darl/rl/impala.hpp"

#include <algorithm>
#include <cmath>

#include "darl/common/error.hpp"
#include "darl/nn/distributions.hpp"

namespace darl::rl {
namespace {

std::vector<std::size_t> net_sizes(std::size_t in,
                                   const std::vector<std::size_t>& hidden,
                                   std::size_t out) {
  std::vector<std::size_t> sizes;
  sizes.push_back(in);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(out);
  return sizes;
}

/// Inference-only IMPALA policy (identical mechanics to the PPO actor).
class ImpalaActor final : public RolloutActor {
 public:
  ImpalaActor(const nn::Mlp& net, Vec log_std, env::ActionSpace space)
      : net_(net), log_std_(std::move(log_std)), space_(std::move(space)) {}

  void set_params(const Vec& flat) override {
    const std::size_t n = net_.param_count();
    DARL_CHECK(flat.size() == n + log_std_.size(),
               "IMPALA actor snapshot has " << flat.size() << " values");
    Vec net_part(flat.begin(), flat.begin() + static_cast<std::ptrdiff_t>(n));
    net_.set_flat_params(net_part);
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(n), flat.end(),
              log_std_.begin());
  }

  ActOutput act(const Vec& obs, Rng& rng) override {
    const Vec head = net_.evaluate(obs);
    return sample_from_head(head, rng);
  }

  void act_batch(const std::vector<Vec>& obs, Rng& rng,
                 std::vector<ActOutput>& out) override {
    DARL_CHECK(out.size() == obs.size(),
               "act_batch: out has " << out.size() << " slots for "
                                     << obs.size() << " observations");
    if (obs.empty()) return;
    obs_mat_.reshape(obs.size(), net_.input_dim());
    for (std::size_t i = 0; i < obs.size(); ++i) {
      std::copy(obs[i].begin(), obs[i].end(), obs_mat_.row(i));
    }
    const Matrix& heads = net_.evaluate_batch(obs_mat_);
    for (std::size_t i = 0; i < obs.size(); ++i) {
      head_scratch_.assign(heads.row(i), heads.row(i) + net_.output_dim());
      out[i] = sample_from_head(head_scratch_, rng);
    }
  }

  Vec act_greedy(const Vec& obs) override {
    const Vec head = net_.evaluate(obs);
    if (space_.is_discrete()) {
      const Vec p = nn::Categorical::softmax(head);
      return space_.discrete().encode(static_cast<std::size_t>(
          std::max_element(p.begin(), p.end()) - p.begin()));
    }
    return space_.box().clip(head);
  }

  double inference_cost_mflop() const override {
    return net_.flops_per_forward() / 1e6;
  }

 private:
  /// Shared sampling math for act()/act_batch().
  ActOutput sample_from_head(const Vec& head, Rng& rng) {
    ActOutput out;
    if (space_.is_discrete()) {
      const std::size_t a = nn::Categorical::sample(head, rng);
      out.action = space_.discrete().encode(a);
      out.log_prob = nn::Categorical::log_prob(head, a);
    } else {
      const Vec raw = nn::DiagGaussian::sample(head, log_std_, rng);
      out.log_prob = nn::DiagGaussian::log_prob(head, log_std_, raw);
      out.action = space_.box().clip(raw);
    }
    return out;
  }

  nn::Mlp net_;
  Vec log_std_;
  env::ActionSpace space_;
  Matrix obs_mat_;  // act_batch staging rows
  Vec head_scratch_;
};

}  // namespace

VtraceResult compute_vtrace(const std::vector<Transition>& stream,
                            const std::vector<double>& log_ratio,
                            const std::vector<double>& values,
                            const std::vector<double>& bootstrap, double gamma,
                            double rho_clip, double c_clip) {
  const std::size_t n = stream.size();
  DARL_CHECK(log_ratio.size() == n && values.size() == n && bootstrap.size() == n,
             "compute_vtrace size mismatch");
  DARL_CHECK(gamma >= 0.0 && gamma <= 1.0, "gamma out of [0,1]");
  DARL_CHECK(rho_clip > 0.0 && c_clip > 0.0, "clips must be positive");

  VtraceResult out;
  out.vs.resize(n);
  out.pg_adv.resize(n);
  out.rho.resize(n);

  // Backward recursion: vs_t - V(t) = delta_t + gamma c_t (vs_{t+1} -
  // V(t+1)), with the accumulator reset at episode boundaries.
  double next_excess = 0.0;   // vs_{t+1} - V(s_{t+1})
  double next_value = 0.0;    // V(s_{t+1})
  for (std::size_t i = n; i-- > 0;) {
    const Transition& tr = stream[i];
    const double ratio = std::exp(log_ratio[i]);
    const double rho = std::min(rho_clip, ratio);
    const double c = std::min(c_clip, ratio);
    out.rho[i] = rho;

    double v_next;
    double excess_next;
    if (tr.done()) {
      v_next = tr.terminated ? 0.0 : bootstrap[i];
      excess_next = 0.0;  // no trace across episodes
    } else {
      v_next = (i + 1 < n) ? values[i + 1] : bootstrap[i];
      excess_next = (i + 1 < n) ? next_excess : 0.0;
    }

    const double delta = rho * (tr.reward + gamma * v_next - values[i]);
    const double excess = delta + gamma * c * excess_next;
    out.vs[i] = values[i] + excess;
    // Policy-gradient advantage uses vs_{t+1}, i.e. v_next + excess_next.
    out.pg_adv[i] =
        rho * (tr.reward + gamma * (v_next + excess_next) - values[i]);

    next_excess = excess;
    next_value = values[i];
    (void)next_value;
  }
  return out;
}

ImpalaAlgorithm::ImpalaAlgorithm(std::size_t obs_dim,
                                 env::ActionSpace action_space,
                                 ImpalaConfig config, std::uint64_t seed)
    : obs_dim_(obs_dim),
      action_space_(std::move(action_space)),
      config_(std::move(config)),
      rng_(seed),
      actor_([&] {
        Rng init = rng_.split(1);
        return nn::Mlp(net_sizes(obs_dim, config_.hidden,
                                 action_space_.is_discrete()
                                     ? action_space_.discrete().n()
                                     : action_space_.box().dim()),
                       nn::Activation::Tanh, init);
      }()),
      critic_([&] {
        Rng init = rng_.split(2);
        return nn::Mlp(net_sizes(obs_dim, config_.hidden, 1),
                       nn::Activation::Tanh, init);
      }()) {
  DARL_CHECK(obs_dim > 0, "obs_dim must be positive");
  if (action_space_.is_box()) {
    log_std_.assign(action_space_.box().dim(), config_.log_std_init);
    log_std_grad_.assign(log_std_.size(), 0.0);
  }
  auto actor_params = actor_.params();
  if (!log_std_.empty()) {
    actor_params.push_back(nn::ParamRef{&log_std_, &log_std_grad_, "log_std"});
  }
  actor_opt_ = std::make_unique<nn::Adam>(actor_params, config_.learning_rate);
  critic_opt_ = std::make_unique<nn::Adam>(critic_.params(), config_.learning_rate);
}

std::unique_ptr<RolloutActor> ImpalaAlgorithm::make_actor() const {
  return std::make_unique<ImpalaActor>(actor_, log_std_, action_space_);
}

Vec ImpalaAlgorithm::policy_params() const {
  Vec flat = actor_.get_flat_params();
  flat.insert(flat.end(), log_std_.begin(), log_std_.end());
  return flat;
}

std::size_t ImpalaAlgorithm::params_bytes() const {
  return (actor_.param_count() + log_std_.size()) * sizeof(double);
}

std::size_t ImpalaAlgorithm::transition_bytes() const {
  return (2 * obs_dim_ + action_space_.action_dim() + 4) * sizeof(double);
}

double ImpalaAlgorithm::value(const Vec& obs) const {
  return critic_.evaluate(obs)[0];
}

TrainStats ImpalaAlgorithm::train(const std::vector<WorkerBatch>& batches) {
  TrainStats stats;

  // Single pass over every stream: compute V-trace targets with the
  // current networks, then accumulate one policy and one value gradient.
  actor_.zero_grad();
  std::fill(log_std_grad_.begin(), log_std_grad_.end(), 0.0);
  critic_.zero_grad();

  std::size_t total = 0;
  for (const auto& b : batches) total += b.transitions.size();
  if (total == 0) return stats;
  const double scale = 1.0 / static_cast<double>(total);

  double policy_loss = 0.0, value_loss = 0.0, entropy_sum = 0.0;
  double value_evals = 0.0;

  for (const auto& batch : batches) {
    const auto& stream = batch.transitions;
    if (stream.empty()) continue;

    const std::size_t n = stream.size();
    std::vector<double> values(n);
    std::vector<double> boots(n);
    std::vector<double> log_ratio(n);
    std::vector<double> logp_new(n);

    // V-trace inputs via batched evaluation: one critic pass over the
    // stream, one over the bootstrap rows, one actor pass for the current
    // log-probs. Bitwise identical to the old per-sample loop.
    st_obs_.reshape(n, obs_dim_);
    for (std::size_t i = 0; i < n; ++i) {
      std::copy(stream[i].obs.begin(), stream[i].obs.end(), st_obs_.row(i));
    }
    {
      const Matrix& v = critic_.evaluate_batch(st_obs_);
      for (std::size_t i = 0; i < n; ++i) values[i] = v(i, 0);
    }
    boot_idx_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      value_evals += 1.0;
      boots[i] = 0.0;  // unused mid-stream
      if (i + 1 == n || stream[i].done()) {
        if (!stream[i].terminated) boot_idx_.push_back(i);
        value_evals += 1.0;
      }
    }
    if (!boot_idx_.empty()) {
      st_boot_obs_.reshape(boot_idx_.size(), obs_dim_);
      for (std::size_t k = 0; k < boot_idx_.size(); ++k) {
        const Vec& nobs = stream[boot_idx_[k]].next_obs;
        std::copy(nobs.begin(), nobs.end(), st_boot_obs_.row(k));
      }
      const Matrix& v = critic_.evaluate_batch(st_boot_obs_);
      for (std::size_t k = 0; k < boot_idx_.size(); ++k)
        boots[boot_idx_[k]] = v(k, 0);
    }
    const std::size_t head_dim = actor_.output_dim();
    {
      const Matrix& heads = actor_.evaluate_batch(st_obs_);
      for (std::size_t i = 0; i < n; ++i) {
        head_scratch_.assign(heads.row(i), heads.row(i) + head_dim);
        if (action_space_.is_discrete()) {
          const std::size_t a =
              action_space_.discrete().decode(stream[i].action);
          logp_new[i] = nn::Categorical::log_prob(head_scratch_, a);
        } else {
          logp_new[i] = nn::DiagGaussian::log_prob(head_scratch_, log_std_,
                                                   stream[i].action);
        }
        log_ratio[i] = logp_new[i] - stream[i].log_prob;
      }
    }

    const VtraceResult vt =
        compute_vtrace(stream, log_ratio, values, boots, config_.gamma,
                       config_.rho_clip, config_.c_clip);

    // One actor and one critic forward/backward batch per stream; gradients
    // keep accumulating across streams exactly as the per-sample calls did
    // (gemm seeds each element from the existing gradient value).
    const Matrix& heads = actor_.forward_batch(st_obs_);
    const Matrix& vals = critic_.forward_batch(st_obs_);
    st_dhead_.reshape(n, head_dim);
    st_dv_.reshape(n, 1);
    for (std::size_t i = 0; i < n; ++i) {
      const Transition& tr = stream[i];
      // Policy gradient: -pg_adv * grad logp - entropy bonus.
      head_scratch_.assign(heads.row(i), heads.row(i) + head_dim);
      double* d_head = st_dhead_.row(i);
      if (action_space_.is_discrete()) {
        const std::size_t a = action_space_.discrete().decode(tr.action);
        const Vec g_logp = nn::Categorical::log_prob_grad(head_scratch_, a);
        const Vec g_ent = nn::Categorical::entropy_grad(head_scratch_);
        entropy_sum += nn::Categorical::entropy(head_scratch_);
        for (std::size_t j = 0; j < head_dim; ++j) {
          d_head[j] = scale * (-vt.pg_adv[i] * g_logp[j] -
                               config_.entropy_coef * g_ent[j]);
        }
      } else {
        nn::DiagGaussian::log_prob_grad(head_scratch_, log_std_, tr.action,
                                        d_mean_, d_log_std_);
        entropy_sum += nn::DiagGaussian::entropy(log_std_);
        for (std::size_t j = 0; j < head_dim; ++j) {
          d_head[j] = scale * -vt.pg_adv[i] * d_mean_[j];
          log_std_grad_[j] += scale * (-vt.pg_adv[i] * d_log_std_[j] -
                                       config_.entropy_coef);
        }
      }
      policy_loss += -vt.pg_adv[i] * logp_new[i];

      // Value regression toward vs.
      const double verr = vals(i, 0) - vt.vs[i];
      value_loss += 0.5 * verr * verr;
      st_dv_.row(i)[0] = scale * config_.value_coef * verr;
    }
    actor_.backward_batch(st_dhead_);
    critic_.backward_batch(st_dv_);
  }

  auto actor_params = actor_.params();
  if (!log_std_.empty()) {
    actor_params.push_back(nn::ParamRef{&log_std_, &log_std_grad_, "log_std"});
  }
  nn::clip_grad_norm(actor_params, config_.max_grad_norm);
  nn::clip_grad_norm(critic_.params(), config_.max_grad_norm);
  actor_opt_->step();
  critic_opt_->step();

  stats.samples = total;
  stats.gradient_steps = 1;
  stats.policy_loss = policy_loss / static_cast<double>(total);
  stats.value_loss = value_loss / static_cast<double>(total);
  stats.entropy = entropy_sum / static_cast<double>(total);
  const double af = actor_.flops_per_forward();
  const double cf = critic_.flops_per_forward();
  // Per sample: one actor eval + one actor fwd+bwd + one critic eval for
  // targets + one critic fwd+bwd.
  stats.train_cost_mflop =
      (value_evals * cf + static_cast<double>(total) * (4.0 * af + 3.0 * cf)) /
      1e6;
  return stats;
}

}  // namespace darl::rl
