#include "darl/rl/checkpoint.hpp"

#include <cinttypes>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"

namespace darl::rl {
namespace {

constexpr const char* kMagicV1 = "darl-checkpoint-v1";
constexpr const char* kMagicV2 = "darl-checkpoint-v2";
constexpr const char* kDigestKey = "fnv1a64";

AlgoKind parse_algo(const std::string& algo) {
  if (algo == "PPO") return AlgoKind::PPO;
  if (algo == "SAC") return AlgoKind::SAC;
  if (algo == "IMPALA") return AlgoKind::IMPALA;
  throw CheckpointError("unknown checkpoint algorithm '" + algo + "'");
}

/// The v2 payload — everything between the magic line and the digest
/// footer, exactly as serialized. Digesting the serialized text (same
/// helper as the campaign cache) makes the footer independent of how the
/// doubles are later parsed.
std::string serialize_payload(const Checkpoint& checkpoint) {
  std::ostringstream payload;
  payload.precision(17);
  payload << algo_name(checkpoint.kind) << ' ' << checkpoint.obs_dim << ' '
          << checkpoint.action_dim << ' ' << checkpoint.params.size() << '\n';
  for (double v : checkpoint.params) payload << v << '\n';
  return payload.str();
}

std::string digest_hex(std::uint64_t digest) {
  std::ostringstream oss;
  oss << std::hex << std::setw(16) << std::setfill('0') << digest;
  return oss.str();
}

/// Parse one metadata line "ALGO obs act count" into `ck`; returns the
/// parameter count.
std::size_t parse_metadata(const std::string& line, Checkpoint& ck) {
  std::istringstream meta(line);
  std::string algo;
  std::size_t obs_dim = 0, action_dim = 0, count = 0;
  if (!(meta >> algo >> obs_dim >> action_dim >> count)) {
    throw CheckpointError("malformed checkpoint metadata '" + line + "'");
  }
  ck.kind = parse_algo(algo);
  ck.obs_dim = obs_dim;
  ck.action_dim = action_dim;
  return count;
}

/// Legacy v1 body: whitespace-separated values, no integrity footer.
Checkpoint load_v1_body(std::istream& in) {
  Checkpoint ck;
  std::string algo;
  std::size_t obs_dim = 0, action_dim = 0, count = 0;
  if (!(in >> algo >> obs_dim >> action_dim >> count)) {
    throw CheckpointError("malformed checkpoint metadata");
  }
  ck.kind = parse_algo(algo);
  ck.obs_dim = obs_dim;
  ck.action_dim = action_dim;
  ck.params.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!(in >> ck.params[i])) {
      throw CheckpointError("checkpoint truncated at parameter " +
                            std::to_string(i) + " of " + std::to_string(count));
    }
  }
  return ck;
}

/// v2 body: line-oriented so the payload text can be rebuilt verbatim for
/// digest verification.
Checkpoint load_v2_body(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw CheckpointError("checkpoint truncated before metadata");
  }
  std::string payload = line + '\n';
  Checkpoint ck;
  const std::size_t count = parse_metadata(line, ck);
  ck.params.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) {
      throw CheckpointError("checkpoint truncated at parameter " +
                            std::to_string(i) + " of " + std::to_string(count));
    }
    payload += line;
    payload += '\n';
    std::istringstream value(line);
    if (!(value >> ck.params[i])) {
      throw CheckpointError("unparsable checkpoint parameter " +
                            std::to_string(i) + ": '" + line + "'");
    }
  }
  if (!std::getline(in, line)) {
    throw CheckpointError("checkpoint truncated before integrity footer");
  }
  std::istringstream footer(line);
  std::string key, stored_hex;
  if (!(footer >> key >> stored_hex) || key != kDigestKey) {
    throw CheckpointError("malformed checkpoint integrity footer '" + line +
                          "'");
  }
  const std::string computed_hex = digest_hex(fnv1a64(payload));
  if (stored_hex != computed_hex) {
    throw CheckpointError("checkpoint integrity digest mismatch (stored " +
                          stored_hex + ", computed " + computed_hex +
                          ") — file is corrupted");
  }
  return ck;
}

}  // namespace

void save_checkpoint(std::ostream& out, const Checkpoint& checkpoint) {
  const std::string payload = serialize_payload(checkpoint);
  out << kMagicV2 << '\n'
      << payload << kDigestKey << ' ' << digest_hex(fnv1a64(payload)) << '\n';
  DARL_CHECK(static_cast<bool>(out), "checkpoint write failed");
}

Checkpoint load_checkpoint(std::istream& in) {
  std::string magic;
  if (!std::getline(in, magic)) {
    throw CheckpointError("empty checkpoint stream");
  }
  if (magic == kMagicV2) return load_v2_body(in);
  if (magic == kMagicV1) return load_v1_body(in);
  throw CheckpointError("unrecognized checkpoint header '" + magic + "'");
}

void save_checkpoint_file(const std::string& path, const Checkpoint& checkpoint) {
  std::ofstream out(path);
  DARL_CHECK(static_cast<bool>(out), "cannot open '" << path << "' for writing");
  save_checkpoint(out, checkpoint);
}

Checkpoint load_checkpoint_file(const std::string& path) {
  std::ifstream in(path);
  DARL_CHECK(static_cast<bool>(in), "cannot open '" << path << "' for reading");
  return load_checkpoint(in);
}

}  // namespace darl::rl
