#include "darl/rl/checkpoint.hpp"

#include <cinttypes>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "darl/common/error.hpp"

namespace darl::rl {
namespace {

constexpr const char* kMagic = "darl-checkpoint-v1";

}  // namespace

void save_checkpoint(std::ostream& out, const Checkpoint& checkpoint) {
  out << kMagic << '\n';
  out << algo_name(checkpoint.kind) << ' ' << checkpoint.obs_dim << ' '
      << checkpoint.action_dim << ' ' << checkpoint.params.size() << '\n';
  out.precision(17);
  for (double v : checkpoint.params) out << v << '\n';
  DARL_CHECK(static_cast<bool>(out), "checkpoint write failed");
}

Checkpoint load_checkpoint(std::istream& in) {
  std::string magic;
  DARL_CHECK(std::getline(in, magic), "empty checkpoint stream");
  DARL_CHECK(magic == kMagic, "unrecognized checkpoint header '" << magic << "'");

  std::string algo;
  std::size_t obs_dim = 0, action_dim = 0, count = 0;
  DARL_CHECK(static_cast<bool>(in >> algo >> obs_dim >> action_dim >> count),
             "malformed checkpoint metadata");
  Checkpoint ck;
  if (algo == "PPO") {
    ck.kind = AlgoKind::PPO;
  } else if (algo == "SAC") {
    ck.kind = AlgoKind::SAC;
  } else if (algo == "IMPALA") {
    ck.kind = AlgoKind::IMPALA;
  } else {
    throw Error("unknown checkpoint algorithm '" + algo + "'");
  }
  ck.obs_dim = obs_dim;
  ck.action_dim = action_dim;
  ck.params.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    DARL_CHECK(static_cast<bool>(in >> ck.params[i]),
               "checkpoint truncated at parameter " << i);
  }
  return ck;
}

void save_checkpoint_file(const std::string& path, const Checkpoint& checkpoint) {
  std::ofstream out(path);
  DARL_CHECK(static_cast<bool>(out), "cannot open '" << path << "' for writing");
  save_checkpoint(out, checkpoint);
}

Checkpoint load_checkpoint_file(const std::string& path) {
  std::ifstream in(path);
  DARL_CHECK(static_cast<bool>(in), "cannot open '" << path << "' for reading");
  return load_checkpoint(in);
}

}  // namespace darl::rl
