#include "darl/rl/evaluate.hpp"

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"

namespace darl::rl {

EvalResult evaluate_policy(RolloutActor& actor, env::Env& environment,
                           std::size_t episodes, Rng& rng, bool stochastic,
                           std::size_t max_steps_per_episode) {
  DARL_CHECK(episodes > 0, "evaluate_policy needs at least one episode");
  EvalResult out;
  for (std::size_t ep = 0; ep < episodes; ++ep) {
    Vec obs = environment.reset();
    double total = 0.0;
    std::size_t steps = 0;
    bool terminated = false;
    while (steps < max_steps_per_episode) {
      Vec action = stochastic ? actor.act(obs, rng).action
                              : actor.act_greedy(obs);
      ++out.inferences;
      const env::StepResult r = environment.step(action);
      total += r.reward;
      ++steps;
      obs = r.observation;
      if (r.done()) {
        terminated = r.terminated;
        break;
      }
    }
    (void)terminated;
    out.mean_total_reward += total;
    out.mean_score += environment.episode_score().value_or(total);
    out.mean_length += static_cast<double>(steps);
    ++out.episodes;
  }
  out.env_cost_units = environment.take_compute_cost();
  const double n = static_cast<double>(out.episodes);
  out.mean_score /= n;
  out.mean_total_reward /= n;
  out.mean_length /= n;
  return out;
}

}  // namespace darl::rl
