// darl/rl/checkpoint.hpp
//
// Policy checkpointing: persist a trained policy's flat parameter vector
// (plus an interface fingerprint) so a study's winning configuration can be
// re-deployed without retraining — the paper's motivation for choosing a
// good configuration *before* the learning phase is reproduced.

#pragma once

#include <iosfwd>
#include <string>

#include "darl/linalg/vec.hpp"
#include "darl/rl/types.hpp"

namespace darl::rl {

/// A saved policy snapshot.
struct Checkpoint {
  AlgoKind kind = AlgoKind::PPO;
  std::size_t obs_dim = 0;
  std::size_t action_dim = 0;
  Vec params;
};

/// Serialize a checkpoint (text header + little-endian doubles in base-10
/// text lines; robust and diffable, adequate for the small policies here).
void save_checkpoint(std::ostream& out, const Checkpoint& checkpoint);

/// Parse a checkpoint written by save_checkpoint. Throws darl::Error on a
/// malformed stream or version mismatch.
Checkpoint load_checkpoint(std::istream& in);

/// Convenience file wrappers; throw darl::Error on I/O failure.
void save_checkpoint_file(const std::string& path, const Checkpoint& checkpoint);
Checkpoint load_checkpoint_file(const std::string& path);

}  // namespace darl::rl
