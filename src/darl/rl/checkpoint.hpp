// darl/rl/checkpoint.hpp
//
// Policy checkpointing: persist a trained policy's flat parameter vector
// (plus an interface fingerprint) so a study's winning configuration can be
// re-deployed without retraining — the paper's motivation for choosing a
// good configuration *before* the learning phase is reproduced.
//
// Format v2 adds an integrity footer: an fnv1a64 digest over the payload
// (metadata line + parameter lines, exactly as serialized), so a
// truncated or bit-flipped file fails loading with a typed
// CheckpointError instead of silently deploying garbage weights. Files
// written by the v1 format (no digest) still load.

#pragma once

#include <iosfwd>
#include <string>

#include "darl/common/error.hpp"
#include "darl/linalg/vec.hpp"
#include "darl/rl/types.hpp"

namespace darl::rl {

/// Raised when a checkpoint stream is malformed, truncated, fails its
/// integrity digest, or does not match the architecture it is loaded into.
class CheckpointError : public Error {
 public:
  explicit CheckpointError(const std::string& what_arg) : Error(what_arg) {}
};

/// A saved policy snapshot.
struct Checkpoint {
  AlgoKind kind = AlgoKind::PPO;
  std::size_t obs_dim = 0;
  std::size_t action_dim = 0;
  Vec params;
};

/// Serialize a checkpoint (v2: text header + base-10 parameter lines at
/// round-trip precision + fnv1a64 payload digest; robust and diffable,
/// adequate for the small policies here).
void save_checkpoint(std::ostream& out, const Checkpoint& checkpoint);

/// Parse a checkpoint written by save_checkpoint (v2) or by the legacy
/// digest-less v1 format. Throws CheckpointError on a malformed,
/// truncated or digest-mismatched stream.
Checkpoint load_checkpoint(std::istream& in);

/// Convenience file wrappers; throw darl::Error on I/O failure and
/// CheckpointError on malformed content.
void save_checkpoint_file(const std::string& path, const Checkpoint& checkpoint);
Checkpoint load_checkpoint_file(const std::string& path);

}  // namespace darl::rl
