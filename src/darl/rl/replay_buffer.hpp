// darl/rl/replay_buffer.hpp
//
// Uniform-sampling experience replay (the off-policy memory behind SAC,
// and the paper's §II-A "experience replay" background item).

#pragma once

#include <cstddef>
#include <vector>

#include "darl/rl/types.hpp"

namespace darl {
class Rng;
}

namespace darl::rl {

/// Fixed-capacity ring buffer of transitions with uniform minibatch
/// sampling. Overwrites the oldest entries once full.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  /// Append one transition (copies).
  void push(const Transition& t);

  /// Number of transitions currently stored.
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  /// Sample `n` transitions uniformly with replacement. Requires a
  /// non-empty buffer. Returned pointers remain valid until the next push.
  std::vector<const Transition*> sample(std::size_t n, Rng& rng) const;

  /// Access by age-independent slot index (for tests).
  const Transition& at(std::size_t index) const;

  /// Total transitions ever pushed (including overwritten ones).
  std::size_t total_pushed() const { return total_pushed_; }

 private:
  std::size_t capacity_;
  std::vector<Transition> storage_;
  std::size_t next_ = 0;
  std::size_t size_ = 0;
  std::size_t total_pushed_ = 0;
};

}  // namespace darl::rl
