#include "darl/rl/algorithm.hpp"

#include "darl/rl/factory.hpp"

#include "darl/common/error.hpp"
#include "darl/rl/ppo.hpp"
#include "darl/rl/impala.hpp"
#include "darl/rl/sac.hpp"

namespace darl::rl {

const char* algo_name(AlgoKind kind) {
  switch (kind) {
    case AlgoKind::PPO: return "PPO";
    case AlgoKind::SAC: return "SAC";
    case AlgoKind::IMPALA: return "IMPALA";
  }
  return "???";
}

std::unique_ptr<Algorithm> make_algorithm(const AlgorithmSpec& spec,
                                          std::size_t obs_dim,
                                          const env::ActionSpace& action_space,
                                          std::uint64_t seed) {
  switch (spec.kind) {
    case AlgoKind::PPO:
      return std::make_unique<PpoAlgorithm>(obs_dim, action_space, spec.ppo,
                                            seed);
    case AlgoKind::SAC:
      return std::make_unique<SacAlgorithm>(obs_dim, action_space, spec.sac,
                                            seed);
    case AlgoKind::IMPALA:
      return std::make_unique<ImpalaAlgorithm>(obs_dim, action_space,
                                               spec.impala, seed);
  }
  throw InvalidArgument("unknown AlgoKind");
}

}  // namespace darl::rl
