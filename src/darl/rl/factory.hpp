// darl/rl/factory.hpp
//
// One-stop construction of a learning algorithm from a declarative spec —
// the handle the methodology's "learning configuration" stage uses to turn
// an algorithm-parameter choice into a learner.

#pragma once

#include <memory>

#include "darl/rl/algorithm.hpp"
#include "darl/rl/ppo.hpp"
#include "darl/rl/impala.hpp"
#include "darl/rl/sac.hpp"

namespace darl::rl {

/// Declarative algorithm choice plus per-algorithm hyperparameters (only
/// the block matching `kind` is read).
struct AlgorithmSpec {
  AlgoKind kind = AlgoKind::PPO;
  PpoConfig ppo;
  SacConfig sac;
  ImpalaConfig impala;
};

/// Instantiate the learner for an observation/action interface.
std::unique_ptr<Algorithm> make_algorithm(const AlgorithmSpec& spec,
                                          std::size_t obs_dim,
                                          const env::ActionSpace& action_space,
                                          std::uint64_t seed);

}  // namespace darl::rl
