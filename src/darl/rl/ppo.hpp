// darl/rl/ppo.hpp
//
// Proximal Policy Optimization (Schulman et al. 2017) with the clipped
// surrogate objective, GAE advantages, minibatch epochs, entropy bonus and
// optional KL early stopping — one of the two algorithms the paper studies.
// Supports discrete policies (categorical head — the airdrop steering
// choice) and continuous policies (diagonal Gaussian with a state-
// independent log-std parameter).

#pragma once

#include <memory>
#include <optional>

#include "darl/common/rng.hpp"
#include "darl/nn/mlp.hpp"
#include "darl/nn/optimizer.hpp"
#include "darl/rl/algorithm.hpp"

namespace darl::rl {

/// PPO hyperparameters (defaults follow Stable-Baselines-style settings,
/// adjusted for the small networks used here).
struct PpoConfig {
  std::vector<std::size_t> hidden = {64, 64};
  double learning_rate = 3e-4;
  double gamma = 0.99;
  double gae_lambda = 0.95;
  double clip_epsilon = 0.2;
  std::size_t epochs = 8;
  std::size_t minibatch_size = 64;
  double entropy_coef = 3e-3;
  double value_coef = 0.5;       ///< scales the critic learning signal
  double max_grad_norm = 0.5;
  /// Stop the epoch loop when the approximate KL to the behaviour policy
  /// exceeds this (0 disables).
  double target_kl = 0.05;
  bool normalize_advantages = true;
  double log_std_init = -0.5;    ///< continuous head initial log-std
};

/// PPO learner. See Algorithm for the role split.
class PpoAlgorithm final : public Algorithm {
 public:
  PpoAlgorithm(std::size_t obs_dim, env::ActionSpace action_space,
               PpoConfig config, std::uint64_t seed);

  AlgoKind kind() const override { return AlgoKind::PPO; }
  std::unique_ptr<RolloutActor> make_actor() const override;
  Vec policy_params() const override;
  std::size_t params_bytes() const override;
  std::size_t transition_bytes() const override;
  TrainStats train(const std::vector<WorkerBatch>& batches) override;

  const PpoConfig& config() const { return config_; }
  const env::ActionSpace& action_space() const { return action_space_; }

  /// Critic value estimate for an observation (exposed for tests).
  double value(const Vec& obs) const;

  /// Mean approximate KL of the last train() call (diagnostics).
  double last_approx_kl() const { return last_kl_; }

 private:
  friend class PpoActor;

  struct Sample {
    const Transition* t = nullptr;
    double advantage = 0.0;
    double ret = 0.0;
  };

  std::size_t obs_dim_;
  env::ActionSpace action_space_;
  PpoConfig config_;
  Rng rng_;

  nn::Mlp actor_;
  Vec log_std_;       // continuous head only
  Vec log_std_grad_;
  nn::Mlp critic_;
  std::unique_ptr<nn::Adam> actor_opt_;
  std::unique_ptr<nn::Adam> critic_opt_;
  double last_kl_ = 0.0;

  // Reusable staging buffers for the batched kernels. Capacity grows to
  // the largest stream / minibatch seen, then train() runs allocation-free
  // apart from the sample index vectors.
  Matrix gae_obs_;
  Matrix mb_obs_, mb_dhead_, mb_dv_;
  std::vector<std::size_t> boot_idx_;
  Vec head_scratch_, d_mean_, d_log_std_;
};

}  // namespace darl::rl
