#include "darl/rl/gae.hpp"

#include <cmath>

#include "darl/common/error.hpp"
#include "darl/common/stats.hpp"

namespace darl::rl {

GaeResult compute_gae(const std::vector<Transition>& stream,
                      const std::vector<double>& values,
                      const std::vector<double>& bootstrap_values, double gamma,
                      double lambda) {
  const std::size_t n = stream.size();
  DARL_CHECK(values.size() == n, "values size " << values.size() << " != " << n);
  DARL_CHECK(bootstrap_values.size() == n,
             "bootstrap_values size " << bootstrap_values.size() << " != " << n);
  DARL_CHECK(gamma >= 0.0 && gamma <= 1.0, "gamma out of [0,1]: " << gamma);
  DARL_CHECK(lambda >= 0.0 && lambda <= 1.0, "lambda out of [0,1]: " << lambda);

  GaeResult out;
  out.advantages.resize(n);
  out.returns.resize(n);

  double running = 0.0;
  for (std::size_t i = n; i-- > 0;) {
    const Transition& tr = stream[i];
    // Value after this transition: 0 at true terminals; V(next_obs) when the
    // episode continues or was truncated; for a mid-stream non-done
    // transition the next stream entry's V(obs) equals V(next_obs), so
    // bootstrap_values[i] is correct everywhere it is read.
    const double next_value = tr.terminated ? 0.0 : bootstrap_values[i];
    const double delta = tr.reward + gamma * next_value - values[i];
    // The lambda accumulator resets at episode boundaries.
    running = delta + (tr.done() ? 0.0 : gamma * lambda * running);
    out.advantages[i] = running;
    out.returns[i] = running + values[i];
  }
  return out;
}

void normalize_advantages(std::vector<double>& advantages) {
  if (advantages.size() < 2) return;
  RunningStats s;
  for (double a : advantages) s.push(a);
  const double sd = s.stddev();
  if (sd < 1e-8) return;
  const double m = s.mean();
  for (double& a : advantages) a = (a - m) / sd;
}

}  // namespace darl::rl
