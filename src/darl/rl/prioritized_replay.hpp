// darl/rl/prioritized_replay.hpp
//
// Proportional prioritized experience replay (Schaul et al. 2016) — the
// memory behind Ape-X, the distributed-replay architecture the paper's
// §II-A cites. Transitions are sampled with probability proportional to
// priority^alpha (priorities track TD error magnitudes) and corrected with
// importance-sampling weights; a sum-tree gives O(log n) updates and draws.

#pragma once

#include <cstddef>
#include <vector>

#include "darl/rl/types.hpp"

namespace darl {
class Rng;
}

namespace darl::rl {

/// Flat-array binary sum-tree over `capacity` leaves. Leaf values are
/// non-negative weights; sample(prefix) finds the leaf whose cumulative
/// range contains `prefix` in O(log n).
class SumTree {
 public:
  explicit SumTree(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }

  /// Set leaf `index` to `value` (>= 0) and update the path to the root.
  void set(std::size_t index, double value);

  /// Value of leaf `index`.
  double get(std::size_t index) const;

  /// Sum of all leaves.
  double total() const;

  /// Largest leaf value (tracked incrementally is overkill here; O(n)).
  double max_value() const;

  /// Leaf whose cumulative interval contains `prefix` in [0, total()).
  /// Requires total() > 0.
  std::size_t sample(double prefix) const;

 private:
  std::size_t capacity_;
  std::size_t leaves_;  // power-of-two leaf count
  std::vector<double> tree_;
};

/// One prioritized sample batch.
struct PrioritizedBatch {
  std::vector<const Transition*> transitions;
  std::vector<std::size_t> indices;  ///< slots for update_priorities
  std::vector<double> weights;       ///< IS weights, normalized to max 1
};

/// Ring-buffer replay with proportional prioritization.
class PrioritizedReplayBuffer {
 public:
  /// `alpha` shapes the priority distribution (0 = uniform); `epsilon`
  /// keeps every transition sampleable.
  PrioritizedReplayBuffer(std::size_t capacity, double alpha = 0.6,
                          double epsilon = 1e-3);

  /// Append a transition with maximal current priority (new experience is
  /// sampled at least once soon, the standard heuristic).
  void push(const Transition& t);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  /// Sample `n` transitions ~ p_i^alpha / sum p^alpha with IS weights
  /// (p_uniform / p_i)^beta, normalized by the batch max. Requires a
  /// non-empty buffer; pointers valid until the next push.
  PrioritizedBatch sample(std::size_t n, double beta, Rng& rng) const;

  /// Set new |TD-error|-based priorities for previously sampled slots.
  void update_priorities(const std::vector<std::size_t>& indices,
                         const std::vector<double>& priorities);

  /// Priority currently assigned to slot `index` (before alpha shaping).
  double priority(std::size_t index) const;

 private:
  std::size_t capacity_;
  double alpha_;
  double epsilon_;
  std::vector<Transition> storage_;
  SumTree tree_;
  std::vector<double> raw_priority_;
  std::size_t next_ = 0;
  std::size_t size_ = 0;
  double max_priority_ = 1.0;
};

}  // namespace darl::rl
