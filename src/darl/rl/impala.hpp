// darl/rl/impala.hpp
//
// IMPALA-style actor-critic with V-trace off-policy correction (Espeholt
// et al. 2018) — the "highly scalable agent" the paper's §II-A cites as a
// canonical distributed-RL architecture. Unlike PPO, the learner performs a
// single pass per batch and corrects for behaviour/target policy lag with
// truncated importance sampling, which is what makes the architecture
// robust to the parameter staleness of asynchronous multi-node deployments
// (demonstrated in bench_extension_impala).

#pragma once

#include <memory>

#include "darl/common/rng.hpp"
#include "darl/nn/mlp.hpp"
#include "darl/nn/optimizer.hpp"
#include "darl/rl/algorithm.hpp"

namespace darl::rl {

/// IMPALA/V-trace hyperparameters.
struct ImpalaConfig {
  std::vector<std::size_t> hidden = {64, 64};
  double learning_rate = 3e-4;
  double gamma = 0.99;
  double rho_clip = 1.0;     ///< importance-weight clip for the TD term
  double c_clip = 1.0;       ///< importance-weight clip for the trace term
  double entropy_coef = 5e-3;
  double value_coef = 0.5;
  double max_grad_norm = 0.5;
  double log_std_init = -0.5;  ///< continuous head initial log-std
};

/// V-trace targets computed over one worker stream (pure function,
/// unit-tested against closed forms).
struct VtraceResult {
  std::vector<double> vs;          ///< corrected value targets
  std::vector<double> pg_adv;      ///< rho_t (r + gamma vs_{t+1} - V(s_t))
  std::vector<double> rho;         ///< clipped importance weights
};

/// `log_ratio[t]` = log pi_target(a_t|s_t) - log mu(a_t|s_t);
/// `values[t]` = V(s_t); `bootstrap[t]` = V(s_{t+1}) (only read at stream
/// ends/truncations, like GAE's convention). Traces reset at done().
VtraceResult compute_vtrace(const std::vector<Transition>& stream,
                            const std::vector<double>& log_ratio,
                            const std::vector<double>& values,
                            const std::vector<double>& bootstrap, double gamma,
                            double rho_clip, double c_clip);

/// IMPALA learner; action-space handling mirrors PpoAlgorithm (categorical
/// or diagonal Gaussian policy head).
class ImpalaAlgorithm final : public Algorithm {
 public:
  ImpalaAlgorithm(std::size_t obs_dim, env::ActionSpace action_space,
                  ImpalaConfig config, std::uint64_t seed);

  AlgoKind kind() const override { return AlgoKind::IMPALA; }
  std::unique_ptr<RolloutActor> make_actor() const override;
  Vec policy_params() const override;
  std::size_t params_bytes() const override;
  std::size_t transition_bytes() const override;
  TrainStats train(const std::vector<WorkerBatch>& batches) override;

  const ImpalaConfig& config() const { return config_; }
  double value(const Vec& obs) const;

 private:
  std::size_t obs_dim_;
  env::ActionSpace action_space_;
  ImpalaConfig config_;
  Rng rng_;

  nn::Mlp actor_;
  Vec log_std_, log_std_grad_;
  nn::Mlp critic_;
  std::unique_ptr<nn::Adam> actor_opt_, critic_opt_;

  // Reusable batched-kernel staging buffers; capacity grows to the longest
  // worker stream, then train() stops allocating in the network hot path.
  Matrix st_obs_, st_boot_obs_, st_dhead_, st_dv_;
  std::vector<std::size_t> boot_idx_;
  Vec head_scratch_, d_mean_, d_log_std_;
};

}  // namespace darl::rl
