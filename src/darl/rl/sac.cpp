#include "darl/rl/sac.hpp"

#include <algorithm>
#include <cmath>

#include "darl/common/error.hpp"
#include "darl/nn/distributions.hpp"

namespace darl::rl {
namespace {

std::vector<std::size_t> actor_sizes(std::size_t obs_dim, std::size_t act_dim,
                                     const std::vector<std::size_t>& hidden) {
  std::vector<std::size_t> sizes;
  sizes.push_back(obs_dim);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(2 * act_dim);
  return sizes;
}

std::vector<std::size_t> critic_sizes(std::size_t obs_dim, std::size_t act_dim,
                                      const std::vector<std::size_t>& hidden) {
  std::vector<std::size_t> sizes;
  sizes.push_back(obs_dim + act_dim);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(1);
  return sizes;
}

/// Affine map between the squashed action in [-1,1]^d and the env box.
Vec scale_to_box(const Vec& squashed, const env::BoxSpace& box) {
  Vec out(squashed.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = box.low()[i] +
             0.5 * (squashed[i] + 1.0) * (box.high()[i] - box.low()[i]);
  }
  return out;
}

Vec unscale_from_box(const Vec& env_action, const env::BoxSpace& box) {
  Vec out(env_action.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double span = box.high()[i] - box.low()[i];
    const double v = span > 0.0
                         ? 2.0 * (env_action[i] - box.low()[i]) / span - 1.0
                         : 0.0;
    out[i] = std::clamp(v, -0.999999, 0.999999);
  }
  return out;
}

Vec concat(const Vec& a, const Vec& b) {
  Vec out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

/// Inference-only SAC policy for rollout workers.
class SacActor final : public RolloutActor {
 public:
  SacActor(const nn::Mlp& actor, env::BoxSpace box, double log_std_min,
           double log_std_max)
      : net_(actor), box_(std::move(box)), lo_(log_std_min), hi_(log_std_max) {}

  void set_params(const Vec& flat) override { net_.set_flat_params(flat); }

  ActOutput act(const Vec& obs, Rng& rng) override {
    const Vec head = net_.evaluate(obs);
    return sample_from_head(head, rng);
  }

  void act_batch(const std::vector<Vec>& obs, Rng& rng,
                 std::vector<ActOutput>& out) override {
    DARL_CHECK(out.size() == obs.size(),
               "act_batch: out has " << out.size() << " slots for "
                                     << obs.size() << " observations");
    if (obs.empty()) return;
    obs_mat_.reshape(obs.size(), net_.input_dim());
    for (std::size_t i = 0; i < obs.size(); ++i) {
      std::copy(obs[i].begin(), obs[i].end(), obs_mat_.row(i));
    }
    const Matrix& heads = net_.evaluate_batch(obs_mat_);
    for (std::size_t i = 0; i < obs.size(); ++i) {
      head_scratch_.assign(heads.row(i), heads.row(i) + net_.output_dim());
      out[i] = sample_from_head(head_scratch_, rng);
    }
  }

  Vec act_greedy(const Vec& obs) override {
    const Vec head = net_.evaluate(obs);
    const std::size_t d = head.size() / 2;
    Vec mean(head.begin(), head.begin() + static_cast<std::ptrdiff_t>(d));
    return scale_to_box(nn::SquashedGaussian::mode(mean), box_);
  }

  double inference_cost_mflop() const override {
    return net_.flops_per_forward() / 1e6;
  }

 private:
  /// Shared sampling math for act()/act_batch(): split the head into mean
  /// and softly clamped log-std, draw, scale into the env box.
  ActOutput sample_from_head(const Vec& head, Rng& rng) {
    const std::size_t d = head.size() / 2;
    Vec mean(head.begin(), head.begin() + static_cast<std::ptrdiff_t>(d));
    Vec log_std(d);
    for (std::size_t i = 0; i < d; ++i) {
      log_std[i] = lo_ + 0.5 * (hi_ - lo_) * (std::tanh(head[d + i]) + 1.0);
    }
    const auto draw = nn::SquashedGaussian::sample(mean, log_std, rng);
    ActOutput out;
    out.action = scale_to_box(draw.action, box_);
    out.log_prob = draw.log_prob;
    return out;
  }

  nn::Mlp net_;
  env::BoxSpace box_;
  double lo_, hi_;
  Matrix obs_mat_;  // act_batch staging rows
  Vec head_scratch_;
};

}  // namespace

SacAlgorithm::SacAlgorithm(std::size_t obs_dim, env::ActionSpace action_space,
                           SacConfig config, std::uint64_t seed)
    : obs_dim_(obs_dim),
      act_dim_([&] {
        DARL_CHECK(action_space.is_box(),
                   "SAC requires a continuous action space, got "
                       << action_space.describe());
        return action_space.box().dim();
      }()),
      action_space_(std::move(action_space)),
      config_(std::move(config)),
      rng_(seed),
      actor_([&] {
        Rng init = rng_.split(1);
        return nn::Mlp(actor_sizes(obs_dim, act_dim_, config_.hidden),
                       nn::Activation::ReLU, init);
      }()),
      q1_([&] {
        Rng init = rng_.split(2);
        return nn::Mlp(critic_sizes(obs_dim, act_dim_, config_.hidden),
                       nn::Activation::ReLU, init);
      }()),
      q2_([&] {
        Rng init = rng_.split(3);
        return nn::Mlp(critic_sizes(obs_dim, act_dim_, config_.hidden),
                       nn::Activation::ReLU, init);
      }()),
      q1_target_(q1_),
      q2_target_(q2_),
      replay_(config_.replay_capacity) {
  DARL_CHECK(obs_dim > 0, "obs_dim must be positive");
  DARL_CHECK(config_.batch_size > 0, "batch_size must be positive");
  DARL_CHECK(config_.tau > 0.0 && config_.tau <= 1.0, "tau out of (0,1]");
  DARL_CHECK(config_.updates_per_step >= 0.0, "updates_per_step negative");
  DARL_CHECK(config_.init_alpha > 0.0, "init_alpha must be positive");

  // Bias the raw log-std head positive so the initial policy explores
  // widely (standard SAC behaviour via start-steps random acting; here the
  // same effect comes from a broad initial Gaussian).
  {
    auto params = actor_.params();
    Vec& last_bias = *params[params.size() - 1].value;
    DARL_ASSERT(last_bias.size() == 2 * act_dim_, "unexpected actor head size");
    for (std::size_t i = 0; i < act_dim_; ++i) last_bias[act_dim_ + i] = 0.5;
  }

  if (config_.prioritized_replay) {
    per_ = std::make_unique<PrioritizedReplayBuffer>(
        config_.replay_capacity, config_.per_alpha);
  }

  log_alpha_.assign(1, std::log(config_.init_alpha));
  log_alpha_grad_.assign(1, 0.0);
  target_entropy_ = config_.target_entropy != 0.0
                        ? config_.target_entropy
                        : -static_cast<double>(act_dim_);

  actor_opt_ = std::make_unique<nn::Adam>(actor_.params(), config_.learning_rate);
  q1_opt_ = std::make_unique<nn::Adam>(q1_.params(), config_.learning_rate);
  q2_opt_ = std::make_unique<nn::Adam>(q2_.params(), config_.learning_rate);
  alpha_opt_ = std::make_unique<nn::Adam>(
      std::vector<nn::ParamRef>{{&log_alpha_, &log_alpha_grad_, "log_alpha"}},
      config_.learning_rate);
}

double SacAlgorithm::alpha() const { return std::exp(log_alpha_[0]); }

std::unique_ptr<RolloutActor> SacAlgorithm::make_actor() const {
  return std::make_unique<SacActor>(actor_, action_space_.box(),
                                    config_.log_std_min, config_.log_std_max);
}

Vec SacAlgorithm::policy_params() const { return actor_.get_flat_params(); }

std::size_t SacAlgorithm::params_bytes() const {
  return actor_.param_count() * sizeof(double);
}

std::size_t SacAlgorithm::transition_bytes() const {
  return (2 * obs_dim_ + act_dim_ + 4) * sizeof(double);
}

void SacAlgorithm::split_head(const Vec& head, Vec& mean, Vec& log_std) const {
  mean.assign(head.begin(), head.begin() + static_cast<std::ptrdiff_t>(act_dim_));
  log_std.resize(act_dim_);
  for (std::size_t i = 0; i < act_dim_; ++i) {
    log_std[i] = config_.log_std_min +
                 0.5 * (config_.log_std_max - config_.log_std_min) *
                     (std::tanh(head[act_dim_ + i]) + 1.0);
  }
}

double SacAlgorithm::q_value(const Vec& obs, const Vec& squashed_action) {
  const Vec in = concat(obs, squashed_action);
  return std::min(q1_.evaluate(in)[0], q2_.evaluate(in)[0]);
}

void SacAlgorithm::polyak_update() {
  const double tau = config_.tau;
  const Vec q1p = q1_.get_flat_params();
  Vec q1t = q1_target_.get_flat_params();
  for (std::size_t i = 0; i < q1t.size(); ++i)
    q1t[i] = (1.0 - tau) * q1t[i] + tau * q1p[i];
  q1_target_.set_flat_params(q1t);

  const Vec q2p = q2_.get_flat_params();
  Vec q2t = q2_target_.get_flat_params();
  for (std::size_t i = 0; i < q2t.size(); ++i)
    q2t[i] = (1.0 - tau) * q2t[i] + tau * q2p[i];
  q2_target_.set_flat_params(q2t);
}

void SacAlgorithm::one_update(TrainStats& stats) {
  // Uniform or prioritized sampling; with PER the critic regression is
  // importance-weighted and TD errors feed back as priorities.
  std::vector<const Transition*> batch;
  std::vector<std::size_t> per_indices;
  std::vector<double> is_weights;
  if (per_) {
    PrioritizedBatch pb = per_->sample(config_.batch_size, config_.per_beta, rng_);
    batch = std::move(pb.transitions);
    per_indices = std::move(pb.indices);
    is_weights = std::move(pb.weights);
  } else {
    batch = replay_.sample(config_.batch_size, rng_);
    is_weights.assign(batch.size(), 1.0);
  }
  const double inv_b = 1.0 / static_cast<double>(batch.size());
  const double a_now = alpha();

  // --- 1) Critic targets y = r + gamma (1-d)(min Q_t(s',a') - alpha logp').
  // One batched actor pass and one batched pass per target critic over the
  // non-terminal rows; the policy draws stay per-sample in ascending batch
  // order so the rng_ stream is identical to the per-sample loop.
  std::vector<double> targets(batch.size());
  nonterm_idx_.clear();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!batch[i]->terminated) nonterm_idx_.push_back(i);
  }
  if (!nonterm_idx_.empty()) {
    mb_obs_.reshape(nonterm_idx_.size(), obs_dim_);
    for (std::size_t k = 0; k < nonterm_idx_.size(); ++k) {
      const Vec& nobs = batch[nonterm_idx_[k]]->next_obs;
      std::copy(nobs.begin(), nobs.end(), mb_obs_.row(k));
    }
    const Matrix& heads = actor_.evaluate_batch(mb_obs_);
    mb_qin_.reshape(nonterm_idx_.size(), obs_dim_ + act_dim_);
    tgt_logp_.resize(nonterm_idx_.size());
    for (std::size_t k = 0; k < nonterm_idx_.size(); ++k) {
      const Transition& tr = *batch[nonterm_idx_[k]];
      head_scratch_.assign(heads.row(k), heads.row(k) + 2 * act_dim_);
      split_head(head_scratch_, mean_scratch_, log_std_scratch_);
      const auto draw =
          nn::SquashedGaussian::sample(mean_scratch_, log_std_scratch_, rng_);
      double* qrow = mb_qin_.row(k);
      std::copy(tr.next_obs.begin(), tr.next_obs.end(), qrow);
      std::copy(draw.action.begin(), draw.action.end(), qrow + obs_dim_);
      tgt_logp_[k] = draw.log_prob;
    }
    const Matrix& q1v = q1_target_.evaluate_batch(mb_qin_);
    const Matrix& q2v = q2_target_.evaluate_batch(mb_qin_);
    for (std::size_t k = 0; k < nonterm_idx_.size(); ++k) {
      const double qmin = std::min(q1v(k, 0), q2v(k, 0));
      targets[nonterm_idx_[k]] =
          batch[nonterm_idx_[k]]->reward +
          config_.gamma * (qmin - a_now * tgt_logp_[k]);
    }
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i]->terminated) targets[i] = batch[i]->reward;
  }

  // --- 2) Critic updates (importance-weighted MSE to targets): one
  // forward/backward batch per critic instead of per sample.
  q1_.zero_grad();
  q2_.zero_grad();
  double q_loss = 0.0;
  std::vector<double> new_priorities(per_ ? batch.size() : 0);
  mb_qin_.reshape(batch.size(), obs_dim_ + act_dim_);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Transition& tr = *batch[i];
    const Vec squashed = unscale_from_box(tr.action, action_space_.box());
    double* qrow = mb_qin_.row(i);
    std::copy(tr.obs.begin(), tr.obs.end(), qrow);
    std::copy(squashed.begin(), squashed.end(), qrow + obs_dim_);
  }
  const Matrix& cv1 = q1_.forward_batch(mb_qin_);
  const Matrix& cv2 = q2_.forward_batch(mb_qin_);
  mb_d1_.reshape(batch.size(), 1);
  mb_d2_.reshape(batch.size(), 1);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const double w = is_weights[i];
    const double e1 = cv1(i, 0) - targets[i];
    const double e2 = cv2(i, 0) - targets[i];
    mb_d1_(i, 0) = inv_b * w * e1;
    mb_d2_(i, 0) = inv_b * w * e2;
    q_loss += 0.5 * inv_b * w * (e1 * e1 + e2 * e2);
    if (per_) new_priorities[i] = 0.5 * (std::abs(e1) + std::abs(e2));
  }
  q1_.backward_batch(mb_d1_);
  q2_.backward_batch(mb_d2_);
  if (per_) per_->update_priorities(per_indices, new_priorities);
  nn::clip_grad_norm(q1_.params(), config_.max_grad_norm);
  nn::clip_grad_norm(q2_.params(), config_.max_grad_norm);
  q1_opt_->step();
  q2_opt_->step();

  // --- 3) Actor update: minimize alpha logp - min Q(s, a(s)).
  // Batched: one actor forward over the batch, per-sample draws in rng
  // order, one batched q1/q2 evaluation to pick the smaller critic, then
  // one forward/backward batch per chosen-critic group to pull dQ/da out
  // of the critic input gradients, and a single actor backward batch.
  actor_.zero_grad();
  double logp_sum = 0.0;
  mb_obs_.reshape(batch.size(), obs_dim_);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::copy(batch[i]->obs.begin(), batch[i]->obs.end(), mb_obs_.row(i));
  }
  const Matrix& heads = actor_.forward_batch(mb_obs_);
  draws_.resize(batch.size());
  means_.resize(batch.size());
  log_stds_.resize(batch.size());
  mb_qin_.reshape(batch.size(), obs_dim_ + act_dim_);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Transition& tr = *batch[i];
    head_scratch_.assign(heads.row(i), heads.row(i) + 2 * act_dim_);
    split_head(head_scratch_, means_[i], log_stds_[i]);
    draws_[i] = nn::SquashedGaussian::sample(means_[i], log_stds_[i], rng_);
    logp_sum += draws_[i].log_prob;
    double* qrow = mb_qin_.row(i);
    std::copy(tr.obs.begin(), tr.obs.end(), qrow);
    std::copy(draws_[i].action.begin(), draws_[i].action.end(),
              qrow + obs_dim_);
  }
  {
    const Matrix& av1 = q1_.evaluate_batch(mb_qin_);
    const Matrix& av2 = q2_.evaluate_batch(mb_qin_);
    grp1_idx_.clear();
    grp2_idx_.clear();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      // Same tie rule as the per-sample path: q1 wins on equality.
      (av1(i, 0) <= av2(i, 0) ? grp1_idx_ : grp2_idx_).push_back(i);
    }
  }
  // dL/da from the critic with the smaller Q (grad of -Q is -dQ/da).
  mb_ga_.reshape(batch.size(), act_dim_);
  for (int g = 0; g < 2; ++g) {
    const std::vector<std::size_t>& idx = g == 0 ? grp1_idx_ : grp2_idx_;
    if (idx.empty()) continue;
    nn::Mlp& qnet = g == 0 ? q1_ : q2_;
    grp_qin_.reshape(idx.size(), obs_dim_ + act_dim_);
    for (std::size_t k = 0; k < idx.size(); ++k) {
      const double* src = mb_qin_.row(idx[k]);
      std::copy(src, src + obs_dim_ + act_dim_, grp_qin_.row(k));
    }
    qnet.forward_batch(grp_qin_);
    grp_dy_.reshape(idx.size(), 1);
    grp_dy_.fill(1.0);
    const Matrix& din = qnet.backward_batch(grp_dy_);  // dQ/d[obs, action]
    for (std::size_t k = 0; k < idx.size(); ++k) {
      double* ga = mb_ga_.row(idx[k]);
      const double* drow = din.row(k);
      for (std::size_t j = 0; j < act_dim_; ++j) ga[j] = -drow[obs_dim_ + j];
    }
  }
  // Discard the input-gradient pollution accumulated in the critics.
  q1_.zero_grad();
  q2_.zero_grad();
  mb_dhead_.reshape(batch.size(), 2 * act_dim_);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    grad_action_.assign(mb_ga_.row(i), mb_ga_.row(i) + act_dim_);
    nn::SquashedGaussian::pathwise_grad(means_[i], log_stds_[i],
                                        draws_[i].pre_tanh, draws_[i].noise,
                                        a_now, grad_action_, d_mean_,
                                        d_log_std_);
    // Chain d_log_std through the soft clamp log_std = f(raw).
    double* dh = mb_dhead_.row(i);
    for (std::size_t j = 0; j < act_dim_; ++j) {
      dh[j] = inv_b * d_mean_[j];
      const double t = std::tanh(heads(i, act_dim_ + j));
      const double dclamp =
          0.5 * (config_.log_std_max - config_.log_std_min) * (1.0 - t * t);
      dh[act_dim_ + j] = inv_b * d_log_std_[j] * dclamp;
    }
  }
  actor_.backward_batch(mb_dhead_);
  nn::clip_grad_norm(actor_.params(), config_.max_grad_norm);
  actor_opt_->step();

  // --- 4) Temperature update: J(alpha) = E[-alpha (logp + target_entropy)].
  const double mean_logp = logp_sum * inv_b;
  log_alpha_grad_[0] = -a_now * (mean_logp + target_entropy_);
  alpha_opt_->step();

  // --- 5) Target networks.
  polyak_update();

  ++stats.gradient_steps;
  stats.value_loss += q_loss;
  stats.entropy += -mean_logp;

  // Simulated compute cost of this update.
  const double af = actor_.flops_per_forward();
  const double qf = q1_.flops_per_forward();
  const double b = static_cast<double>(batch.size());
  // targets: actor fwd + 2 target fwd; critics: 2 * (fwd + bwd);
  // actor: fwd + bwd + 3 critic fwd + critic bwd.
  stats.train_cost_mflop +=
      b * ((af + 2.0 * qf) + 2.0 * 3.0 * qf + (3.0 * af + 5.0 * qf)) / 1e6;
}

TrainStats SacAlgorithm::train(const std::vector<WorkerBatch>& batches) {
  TrainStats stats;
  std::size_t pushed = 0;
  for (const auto& b : batches) {
    for (const auto& tr : b.transitions) {
      if (per_) per_->push(tr);
      else replay_.push(tr);
      ++pushed;
    }
  }
  stats.samples = pushed;
  if (replay_size() < std::max<std::size_t>(config_.warmup_steps,
                                            config_.batch_size)) {
    return stats;
  }

  update_carry_ += static_cast<double>(pushed) * config_.updates_per_step;
  std::size_t n_updates = static_cast<std::size_t>(update_carry_);
  update_carry_ -= static_cast<double>(n_updates);
  for (std::size_t u = 0; u < n_updates; ++u) one_update(stats);

  if (stats.gradient_steps > 0) {
    stats.value_loss /= static_cast<double>(stats.gradient_steps);
    stats.entropy /= static_cast<double>(stats.gradient_steps);
  }
  return stats;
}

}  // namespace darl::rl
