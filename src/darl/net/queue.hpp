// darl/net/queue.hpp
//
// A small bounded MPMC queue used on both ends of the actor–learner
// stream: actors stage outgoing trajectory batches behind a capacity
// limit (a slow learner therefore backpressures collection through TCP
// and this queue, the BatchScheduler admission idea applied to the
// transport), and the learner's per-connection reader threads park
// incoming batches here for the training loop to drain.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "darl/common/error.hpp"
#include "darl/common/thread_safety.hpp"

namespace darl::net {

/// Admission outcome of a bounded-queue operation.
enum class QueueOutcome { Ok, Closed, TimedOut };

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    DARL_CHECK(capacity > 0, "BoundedQueue needs capacity >= 1");
  }

  /// Block until there is room (backpressure), the queue closes, or
  /// `timeout_s` lapses (timeout_s < 0 blocks indefinitely).
  QueueOutcome push(T item, double timeout_s = -1.0) {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto room = [&] { return closed_ || items_.size() < capacity_; };
    if (!wait_for(lock, not_full_, timeout_s, room)) return QueueOutcome::TimedOut;
    if (closed_) return QueueOutcome::Closed;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return QueueOutcome::Ok;
  }

  /// Block until an item is available, the queue closes *and drains*, or
  /// `timeout_s` lapses. Items queued before close() are still delivered.
  QueueOutcome pop(T& out, double timeout_s = -1.0) {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto ready = [&] { return closed_ || !items_.empty(); };
    if (!wait_for(lock, not_empty_, timeout_s, ready)) return QueueOutcome::TimedOut;
    if (items_.empty()) return QueueOutcome::Closed;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return QueueOutcome::Ok;
  }

  /// Wake every waiter; subsequent pushes are rejected, pops drain.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  template <typename Pred>
  static bool wait_for(std::unique_lock<std::mutex>& lock,
                       std::condition_variable& cv, double timeout_s,
                       Pred pred) {
    if (timeout_s < 0.0) {
      cv.wait(lock, pred);
      return true;
    }
    return cv.wait_for(lock, std::chrono::duration<double>(timeout_s), pred);
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_ DARL_GUARDED_BY(mutex_);
  bool closed_ DARL_GUARDED_BY(mutex_) = false;
};

}  // namespace darl::net
