#include "darl/net/wire.hpp"

#include <sstream>

#include "darl/obs/metrics.hpp"

namespace darl::net {
namespace {

/// Token-stream writer at checkpoint-v2 round-trip precision: any double
/// that goes through here comes back bitwise-identical on the far side.
std::ostringstream make_writer() {
  std::ostringstream os;
  os.precision(17);
  return os;
}

void put_vec(std::ostream& os, const Vec& v) {
  os << v.size();
  for (std::size_t i = 0; i < v.size(); ++i) os << ' ' << v[i];
  os << '\n';
}

Vec get_vec(std::istream& is, const char* what) {
  std::size_t n = 0;
  if (!(is >> n)) throw WireError(std::string("net: bad ") + what + " length");
  Vec v(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!(is >> v[i])) {
      throw WireError(std::string("net: truncated ") + what + " vector");
    }
  }
  return v;
}

void expect_tag(std::istream& is, const char* tag, const char* msg) {
  std::string got;
  if (!(is >> got) || got != tag) {
    throw WireError(std::string("net: malformed ") + msg + " payload (want '" +
                    tag + "', got '" + got + "')");
  }
}

template <typename T>
T get_value(std::istream& is, const char* what) {
  T v{};
  if (!(is >> v)) throw WireError(std::string("net: bad ") + what + " field");
  return v;
}

const char* algo_tag(rl::AlgoKind kind) {
  switch (kind) {
    case rl::AlgoKind::PPO: return "PPO";
    case rl::AlgoKind::SAC: return "SAC";
    case rl::AlgoKind::IMPALA: return "IMPALA";
  }
  throw WireError("net: unknown AlgoKind");
}

rl::AlgoKind algo_from_tag(const std::string& tag) {
  if (tag == "PPO") return rl::AlgoKind::PPO;
  if (tag == "SAC") return rl::AlgoKind::SAC;
  if (tag == "IMPALA") return rl::AlgoKind::IMPALA;
  throw WireError("net: unknown algorithm tag '" + tag + "'");
}

}  // namespace

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::Hello: return "Hello";
    case MsgType::Job: return "Job";
    case MsgType::Weights: return "Weights";
    case MsgType::Batch: return "Batch";
    case MsgType::Stop: return "Stop";
    case MsgType::Bye: return "Bye";
  }
  return "unknown";
}

std::string encode_hello(const HelloMsg& msg) {
  auto os = make_writer();
  os << "hello " << msg.node << ' ' << msg.protocol << '\n';
  return os.str();
}

HelloMsg decode_hello(const std::string& payload) {
  std::istringstream is(payload);
  expect_tag(is, "hello", "Hello");
  HelloMsg msg;
  msg.node = get_value<std::uint64_t>(is, "Hello node");
  msg.protocol = get_value<std::uint64_t>(is, "Hello protocol");
  if (msg.protocol != kProtocolVersion) {
    throw WireError("net: protocol version mismatch (peer speaks " +
                    std::to_string(msg.protocol) + ", this build speaks " +
                    std::to_string(kProtocolVersion) + ")");
  }
  return msg;
}

std::string encode_job(const JobMsg& msg) {
  auto os = make_writer();
  os << "job " << algo_tag(msg.algo) << '\n';
  os << "hidden " << msg.hidden.size();
  for (const std::size_t h : msg.hidden) os << ' ' << h;
  os << '\n';
  os << "seed " << msg.seed << '\n';
  os << "topology " << msg.node << ' ' << msg.nodes << ' ' << msg.cores << ' '
     << msg.per_worker << '\n';
  os << "interface " << msg.obs_dim << ' ' << msg.action_dim << '\n';
  os << "env " << msg.env_spec.size() << '\n';
  os << msg.env_spec;
  return os.str();
}

JobMsg decode_job(const std::string& payload) {
  std::istringstream is(payload);
  expect_tag(is, "job", "Job");
  JobMsg msg;
  msg.algo = algo_from_tag(get_value<std::string>(is, "Job algo"));
  expect_tag(is, "hidden", "Job");
  const auto n_hidden = get_value<std::size_t>(is, "Job hidden count");
  msg.hidden.resize(n_hidden);
  for (std::size_t i = 0; i < n_hidden; ++i) {
    msg.hidden[i] = get_value<std::size_t>(is, "Job hidden size");
  }
  expect_tag(is, "seed", "Job");
  msg.seed = get_value<std::uint64_t>(is, "Job seed");
  expect_tag(is, "topology", "Job");
  msg.node = get_value<std::uint64_t>(is, "Job node");
  msg.nodes = get_value<std::uint64_t>(is, "Job nodes");
  msg.cores = get_value<std::uint64_t>(is, "Job cores");
  msg.per_worker = get_value<std::uint64_t>(is, "Job per_worker");
  expect_tag(is, "interface", "Job");
  msg.obs_dim = get_value<std::uint64_t>(is, "Job obs_dim");
  msg.action_dim = get_value<std::uint64_t>(is, "Job action_dim");
  expect_tag(is, "env", "Job");
  const auto env_bytes = get_value<std::size_t>(is, "Job env length");
  is.get();  // the '\n' terminating the env length line
  std::string spec(env_bytes, '\0');
  is.read(spec.data(), static_cast<std::streamsize>(env_bytes));
  if (static_cast<std::size_t>(is.gcount()) != env_bytes) {
    throw WireError("net: truncated Job env spec");
  }
  msg.env_spec = std::move(spec);
  return msg;
}

std::string encode_weights(const WeightsMsg& msg) {
  auto os = make_writer();
  os << "weights " << msg.version << ' ' << msg.checkpoint.size() << '\n';
  os << msg.checkpoint;
  return os.str();
}

WeightsMsg decode_weights(const std::string& payload) {
  std::istringstream is(payload);
  expect_tag(is, "weights", "Weights");
  WeightsMsg msg;
  msg.version = get_value<std::uint64_t>(is, "Weights version");
  const auto bytes = get_value<std::size_t>(is, "Weights length");
  is.get();
  std::string text(bytes, '\0');
  is.read(text.data(), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(is.gcount()) != bytes) {
    throw WireError("net: truncated Weights checkpoint");
  }
  msg.checkpoint = std::move(text);
  return msg;
}

std::string encode_batch_msg(const BatchMsg& msg) {
  auto os = make_writer();
  os << "batch " << msg.worker << ' ' << msg.version << '\n';
  os << "cost " << msg.env_cost_units << ' ' << msg.inferences << ' '
     << msg.steps << '\n';
  os << "episodes " << msg.episodes.size() << '\n';
  for (const env::EpisodeRecord& ep : msg.episodes) {
    os << ep.total_reward << ' ' << ep.score << ' ' << ep.length << '\n';
  }
  os << "transitions " << msg.transitions.size() << '\n';
  for (const rl::Transition& t : msg.transitions) {
    os << t.reward << ' ' << t.log_prob << ' ' << (t.terminated ? 1 : 0) << ' '
       << (t.truncated ? 1 : 0) << '\n';
    put_vec(os, t.obs);
    put_vec(os, t.action);
    put_vec(os, t.next_obs);
  }
  return os.str();
}

BatchMsg decode_batch_msg(const std::string& payload) {
  std::istringstream is(payload);
  expect_tag(is, "batch", "Batch");
  BatchMsg msg;
  msg.worker = get_value<std::uint64_t>(is, "Batch worker");
  msg.version = get_value<std::uint64_t>(is, "Batch version");
  expect_tag(is, "cost", "Batch");
  msg.env_cost_units = get_value<double>(is, "Batch env_cost_units");
  msg.inferences = get_value<std::uint64_t>(is, "Batch inferences");
  msg.steps = get_value<std::uint64_t>(is, "Batch steps");
  expect_tag(is, "episodes", "Batch");
  const auto n_eps = get_value<std::size_t>(is, "Batch episode count");
  msg.episodes.resize(n_eps);
  for (env::EpisodeRecord& ep : msg.episodes) {
    ep.total_reward = get_value<double>(is, "Batch episode reward");
    ep.score = get_value<double>(is, "Batch episode score");
    ep.length = get_value<std::size_t>(is, "Batch episode length");
  }
  expect_tag(is, "transitions", "Batch");
  const auto n_tr = get_value<std::size_t>(is, "Batch transition count");
  msg.transitions.resize(n_tr);
  for (rl::Transition& t : msg.transitions) {
    t.reward = get_value<double>(is, "Batch reward");
    t.log_prob = get_value<double>(is, "Batch log_prob");
    t.terminated = get_value<int>(is, "Batch terminated") != 0;
    t.truncated = get_value<int>(is, "Batch truncated") != 0;
    t.obs = get_vec(is, "Batch obs");
    t.action = get_vec(is, "Batch action");
    t.next_obs = get_vec(is, "Batch next_obs");
  }
  return msg;
}

std::string encode_bye(const ByeMsg& msg) {
  auto os = make_writer();
  os << "bye " << msg.node << '\n';
  return os.str();
}

ByeMsg decode_bye(const std::string& payload) {
  std::istringstream is(payload);
  expect_tag(is, "bye", "Bye");
  ByeMsg msg;
  msg.node = get_value<std::uint64_t>(is, "Bye node");
  return msg;
}

void MsgChannel::send(MsgType type, const std::string& payload) {
  write_frame(fd_.get(), static_cast<std::uint32_t>(type), payload);
  DARL_COUNTER_ADD("net.frames_sent", 1);
  DARL_COUNTER_ADD("net.bytes_sent", kFrameHeaderBytes + payload.size());
}

bool MsgChannel::recv(MsgType& type, std::string& payload) {
  Frame frame;
  if (!read_frame(fd_.get(), frame)) return false;
  type = static_cast<MsgType>(frame.type);
  payload = std::move(frame.payload);
  DARL_COUNTER_ADD("net.frames_received", 1);
  DARL_COUNTER_ADD("net.bytes_received", kFrameHeaderBytes + payload.size());
  return true;
}

std::string MsgChannel::expect(MsgType want) {
  MsgType got{};
  std::string payload;
  if (!recv(got, payload)) {
    throw WireError(std::string("net: peer closed while waiting for ") +
                    msg_type_name(want));
  }
  if (got != want) {
    throw WireError(std::string("net: expected ") + msg_type_name(want) +
                    ", got " + msg_type_name(got));
  }
  return payload;
}

}  // namespace darl::net
