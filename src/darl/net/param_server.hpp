// darl/net/param_server.hpp
//
// The learner's parameter-server endpoint: every trained parameter
// snapshot is published into serve::PolicyStore's versioned hot-swap
// chain (one tenant per training job), and a ring of recent versions is
// kept in full — serialized checkpoint-v2 text ready to ship — so the
// runtime can broadcast *older* versions to remote actors (the
// asynchronous-pipeline schedule sends version max(t-2, 0) at iteration
// t). Publishing through the store means anything built on the serving
// layer (darl_serve, ROADMAP item 2's remote tier) can read the
// training job's live weights with the same lock-free current() chain.

#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "darl/common/thread_safety.hpp"
#include "darl/env/space.hpp"
#include "darl/linalg/vec.hpp"
#include "darl/rl/types.hpp"
#include "darl/serve/policy_store.hpp"

namespace darl::net {

/// Versioned weight publication for one training job. Thread-safe.
class ParamServer {
 public:
  /// `hidden` must match the algorithm's network architecture (the
  /// serving-spec derivation validates the parameter count).
  ParamServer(rl::AlgoKind kind, std::size_t obs_dim, std::size_t action_dim,
              env::ActionSpace action_space, std::vector<std::size_t> hidden);

  /// Publish a snapshot; returns its logical version (0 = initial
  /// parameters, then one per train step). The serve::PolicyStore version
  /// id is logical + 1 (store ids start at 1).
  std::uint64_t publish(const Vec& params);

  /// checkpoint-v2 text of `version`; throws darl::Error when the version
  /// fell out of the retention ring (the runtime only ever ships versions
  /// at most kRetainedVersions behind the latest).
  std::string checkpoint_text(std::uint64_t version) const;

  /// Latest published logical version; publish() must have run at least
  /// once.
  std::uint64_t latest_version() const;

  const serve::PolicyStore& store() const { return store_; }

  /// Tenant name the job publishes under.
  static constexpr const char* kTenant = "learner";
  /// The schedule needs at most the current and two previous versions;
  /// keep a little slack.
  static constexpr std::size_t kRetainedVersions = 8;

 private:
  const rl::AlgoKind kind_;
  const std::size_t obs_dim_;
  const std::size_t action_dim_;
  const env::ActionSpace action_space_;
  const std::vector<std::size_t> hidden_;

  serve::PolicyStore store_;
  mutable std::mutex mutex_;
  std::uint64_t next_version_ DARL_GUARDED_BY(mutex_) = 0;
  /// (logical version, serialized checkpoint) pairs, oldest first.
  std::deque<std::pair<std::uint64_t, std::string>> ring_
      DARL_GUARDED_BY(mutex_);
};

}  // namespace darl::net
