// darl/net/frame.hpp
//
// Length-prefixed binary framing for the darl/net transport (DESIGN.md
// §17). Every message travels as one frame:
//
//   { magic u32, type u32, length u64, fnv1a64 u64 }  — 24-byte header,
//   little-endian, followed by `length` payload bytes.
//
// The digest is fnv1a64 over the payload bytes exactly as sent (the same
// integrity primitive as checkpoint format v2), so a bit-flipped or
// spliced payload fails with a typed FrameError instead of silently
// decoding garbage. read_frame() distinguishes a *clean* EOF at a frame
// boundary (the peer closed between messages — returns false) from
// truncation inside a header or payload (throws FrameError).

#pragma once

#include <cstdint>
#include <string>

#include "darl/net/socket.hpp"

namespace darl::net {

/// "DNET" little-endian.
inline constexpr std::uint32_t kFrameMagic = 0x54454E44u;
inline constexpr std::size_t kFrameHeaderBytes = 24;
/// Guard against a corrupt length field committing us to a huge read.
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 28;  // 256 MiB

/// Raised on a malformed, truncated, oversized or digest-mismatched frame,
/// and on transport errors underneath a frame read/write.
class FrameError : public NetError {
 public:
  enum class Kind { Truncated, BadMagic, BadDigest, TooLarge, TimedOut, Io };

  FrameError(Kind kind, const std::string& what_arg)
      : NetError(what_arg), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// One decoded frame.
struct Frame {
  std::uint32_t type = 0;
  std::string payload;
};

/// Encode a header into exactly kFrameHeaderBytes at `out` (test seam).
void encode_frame_header(std::uint32_t type, const std::string& payload,
                         unsigned char* out);

/// Send one frame (header + payload) with short-write handling. Throws
/// FrameError(Io / TimedOut) when the peer is gone or the send timeout
/// lapses, FrameError(TooLarge) for an oversized payload.
void write_frame(int fd, std::uint32_t type, const std::string& payload);

/// Block for the next frame. Returns false on a clean EOF at a frame
/// boundary; throws FrameError for truncation mid-frame, a bad magic,
/// an oversized length, a digest mismatch, a receive timeout, or a
/// transport error.
bool read_frame(int fd, Frame& out);

}  // namespace darl::net
