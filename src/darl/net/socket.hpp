// darl/net/socket.hpp
//
// The repo's single home for raw POSIX socket handling (DESIGN.md §17).
// Everything here is transport-only: fd lifetime (OwnedFd), loopback
// TCP / Unix-domain listeners, non-blocking connect with a deadline and
// retry-with-backoff, and partial-read / short-write loops that retry
// EINTR and never raise SIGPIPE (every send uses MSG_NOSIGNAL). The
// obs::Exporter and the darl/net frame layer are both built on these
// helpers, so listen/accept/deadline-read exists in exactly one place —
// a darl_lint rule (`naked-socket-call`) rejects raw recv/send/accept
// anywhere outside src/darl/net.
//
// This header intentionally has no dependency on darl/obs (the exporter
// links it), so transport metrics live one layer up in net::MsgChannel.

#pragma once

#include <cstddef>
#include <string>
#include <utility>

#include "darl/common/error.hpp"

namespace darl::net {

/// Raised on transport-level failures (connect refused past the deadline,
/// bind/listen errors, send to a vanished peer).
class NetError : public Error {
 public:
  explicit NetError(const std::string& what_arg) : Error(what_arg) {}
};

/// A parsed transport address: `tcp:PORT` (loopback; 0 = ephemeral) or
/// `unix:/path/to.sock`.
struct Endpoint {
  enum class Kind { Tcp, Unix };
  Kind kind = Kind::Tcp;
  int port = 0;       ///< Tcp only
  std::string path;   ///< Unix only

  /// Parse "tcp:PORT" or "unix:PATH"; throws InvalidArgument otherwise.
  static Endpoint parse(const std::string& text);
  /// Canonical string form ("tcp:8080", "unix:/tmp/x.sock").
  std::string str() const;
};

/// RAII file descriptor (close-on-destroy, move-only).
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { reset(); }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;
  OwnedFd(OwnedFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }
  /// Close the held fd (if any) and take ownership of `fd`.
  void reset(int fd = -1);
  /// Release ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// A listening socket. For Unix endpoints the path is unlinked when the
/// listener is destroyed. endpoint() reports the *bound* address (an
/// ephemeral tcp:0 request resolves to the assigned port).
class Listener {
 public:
  Listener() = default;
  Listener(OwnedFd fd, Endpoint bound) : fd_(std::move(fd)), bound_(std::move(bound)) {}
  ~Listener();
  Listener(Listener&&) noexcept = default;
  Listener& operator=(Listener&& other) noexcept;

  int fd() const { return fd_.get(); }
  bool valid() const { return fd_.valid(); }
  const Endpoint& endpoint() const { return bound_; }

  /// Unblock a concurrent accept() (used for shutdown); safe to call twice.
  void shutdown();

 private:
  OwnedFd fd_;
  Endpoint bound_;
};

/// Bind + listen on `ep` (TCP binds 127.0.0.1 only). Throws NetError.
Listener listen_endpoint(const Endpoint& ep, int backlog = 16);

/// Accept one connection, retrying EINTR. Returns an invalid OwnedFd when
/// the listener was shut down or the listening socket is gone (errno is
/// preserved for diagnostics); never throws.
OwnedFd accept_retry(int listen_fd);

/// Connect to `ep` with a total deadline: non-blocking connect polled to
/// completion, retried with exponential backoff while the peer is not yet
/// listening (ECONNREFUSED / ENOENT — the actor-before-learner race).
/// Throws NetError when the deadline lapses.
OwnedFd connect_endpoint(const Endpoint& ep, double deadline_s = 10.0);

/// shutdown(SHUT_RDWR): unblocks a recv parked on the fd from another
/// thread without closing it (close() would race the fd number against
/// reuse). No-op on an invalid fd.
void shutdown_socket(int fd);

/// Bound both recv and send with a per-syscall timeout.
void set_io_timeout(int fd, double seconds);
/// Receive timeout only, clamped away from zero (a zero timeval means
/// "block forever", the opposite of what a lapsed deadline wants).
void set_recv_timeout(int fd, double seconds);

/// Outcome classification of a read: clean EOF is not an error.
enum class IoStatus { Ok, Eof, TimedOut, Error };

struct IoResult {
  IoStatus status = IoStatus::Ok;
  std::size_t n = 0;  ///< bytes actually transferred
  int err = 0;        ///< errno when status is Error / TimedOut
};

/// One recv of at most `cap` bytes, retrying EINTR. Ok with n > 0, Eof on
/// peer close, TimedOut on a receive-timeout expiry, Error otherwise.
IoResult recv_some(int fd, void* buf, std::size_t cap);

/// Partial-read loop for exactly `n` bytes. Ok when all arrived; Eof when
/// the peer closed first (result.n tells how many bytes did arrive, so the
/// caller can distinguish a clean close at a message boundary, n == 0,
/// from mid-message truncation); TimedOut / Error as recv_some.
IoResult recv_exact(int fd, void* buf, std::size_t n);

/// Short-write loop with MSG_NOSIGNAL (a reset peer yields an error return
/// here, never SIGPIPE), retrying EINTR. Returns Ok or Error/TimedOut.
IoResult send_all(int fd, const void* buf, std::size_t n);
IoResult send_all(int fd, const std::string& data);

/// Drain until EOF (HTTP/1.0-style responses). Stops early on a receive
/// timeout and returns what arrived.
std::string recv_until_eof(int fd);

}  // namespace darl::net
