// darl/net/wire.hpp
//
// The actor–learner message schema and its codec (DESIGN.md §17). Each
// message rides one frame (darl/net/frame.hpp); payloads are the same
// text serialization the checkpoint-v2 format uses — every double is
// written at round-trip precision (17 significant digits), so a value
// decoded on the far side is *bitwise* the value encoded, which is what
// keeps the distributed runtime's campaign CSVs byte-identical to the
// in-process path. Integrity comes from the frame digest, so the codec
// itself can stay a plain token stream.
//
// Protocol (learner-driven, synchronous per iteration):
//
//   actor -> learner   Hello{node}                      (once, on connect)
//   learner -> actor   Job{algo, seed, topology, env}   (once)
//   learner -> actor   Weights{version, checkpoint}     (per iteration)
//   actor -> learner   Batch{worker, version, cost,     (one per worker
//                            episodes, transitions}      per iteration)
//   learner -> actor   Stop{}                           (once)
//   actor -> learner   Bye{node}                        (once)

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "darl/env/wrappers.hpp"
#include "darl/net/frame.hpp"
#include "darl/rl/checkpoint.hpp"
#include "darl/rl/types.hpp"

namespace darl::net {

/// Frame `type` values. Kept dense and stable: the wire is spoken between
/// binaries built from the same tree, but a decoder still rejects unknown
/// types with a typed error rather than guessing.
enum class MsgType : std::uint32_t {
  Hello = 1,
  Job = 2,
  Weights = 3,
  Batch = 4,
  Stop = 5,
  Bye = 6,
};

const char* msg_type_name(MsgType type);

/// Raised when a frame payload does not parse as its message type.
class WireError : public NetError {
 public:
  explicit WireError(const std::string& what_arg) : NetError(what_arg) {}
};

inline constexpr std::uint64_t kProtocolVersion = 1;

/// Actor's opening handshake.
struct HelloMsg {
  std::uint64_t node = 0;
  std::uint64_t protocol = kProtocolVersion;
};

/// Everything an actor process needs to build its rollout workers. The
/// environment travels as an opaque spec string resolved by the worker
/// binary's registered resolver (darl/net stays case-study-agnostic).
struct JobMsg {
  rl::AlgoKind algo = rl::AlgoKind::PPO;
  std::vector<std::size_t> hidden;
  std::uint64_t seed = 0;
  std::uint64_t node = 0;   ///< which node this actor plays
  std::uint64_t nodes = 0;  ///< total deployment size
  std::uint64_t cores = 0;  ///< workers per node
  std::uint64_t per_worker = 0;  ///< transitions per worker per iteration
  std::uint64_t obs_dim = 0;     ///< interface cross-check
  std::uint64_t action_dim = 0;
  std::string env_spec;
};

/// One versioned parameter publication; `checkpoint` is the full
/// checkpoint-v2 text (its own digest included), so the payload a remote
/// actor loads is verified twice and preserves algorithm extras (e.g.
/// PPO's state-independent log-std tail) that a serving spec would strip.
struct WeightsMsg {
  std::uint64_t version = 0;
  std::string checkpoint;
};

/// One worker's iteration result streamed back to the learner.
struct BatchMsg {
  std::uint64_t worker = 0;   ///< global worker id
  std::uint64_t version = 0;  ///< parameter version the worker acted with
  double env_cost_units = 0.0;
  std::uint64_t inferences = 0;
  std::uint64_t steps = 0;
  /// Episodes finished during this collect (delta, not cumulative).
  std::vector<env::EpisodeRecord> episodes;
  std::vector<rl::Transition> transitions;
};

struct ByeMsg {
  std::uint64_t node = 0;
};

std::string encode_hello(const HelloMsg& msg);
HelloMsg decode_hello(const std::string& payload);
std::string encode_job(const JobMsg& msg);
JobMsg decode_job(const std::string& payload);
std::string encode_weights(const WeightsMsg& msg);
WeightsMsg decode_weights(const std::string& payload);
std::string encode_batch_msg(const BatchMsg& msg);
BatchMsg decode_batch_msg(const std::string& payload);
std::string encode_bye(const ByeMsg& msg);
ByeMsg decode_bye(const std::string& payload);

/// One connected peer: frame I/O plus net.* transport metrics
/// (net.frames_sent/received, net.bytes_sent/received). Reading and
/// writing may happen on two different threads concurrently (the runtime
/// pairs one reader with one writer per channel); neither side locks.
class MsgChannel {
 public:
  MsgChannel() = default;
  explicit MsgChannel(OwnedFd fd) : fd_(std::move(fd)) {}

  int fd() const { return fd_.get(); }
  bool valid() const { return fd_.valid(); }

  /// Send one message; throws FrameError on transport failure.
  void send(MsgType type, const std::string& payload);

  /// Receive the next message. Returns false on clean EOF; throws
  /// FrameError on truncation/corruption/timeout.
  bool recv(MsgType& type, std::string& payload);

  /// Expect exactly `want` next; throws WireError on anything else
  /// (including clean EOF).
  std::string expect(MsgType want);

 private:
  OwnedFd fd_;
};

}  // namespace darl::net
