#include "darl/net/frame.hpp"

#include <cstring>

#include "darl/common/rng.hpp"

namespace darl::net {
namespace {

void put_u32(unsigned char* out, std::uint32_t v) {
  out[0] = static_cast<unsigned char>(v & 0xFFu);
  out[1] = static_cast<unsigned char>((v >> 8) & 0xFFu);
  out[2] = static_cast<unsigned char>((v >> 16) & 0xFFu);
  out[3] = static_cast<unsigned char>((v >> 24) & 0xFFu);
}

void put_u64(unsigned char* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFFu);
  }
}

std::uint32_t get_u32(const unsigned char* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

[[noreturn]] void throw_io(const IoResult& r, const char* what) {
  if (r.status == IoStatus::TimedOut) {
    throw FrameError(FrameError::Kind::TimedOut,
                     std::string("net: frame ") + what + " timed out");
  }
  throw FrameError(FrameError::Kind::Io,
                   std::string("net: frame ") + what + " failed: " +
                       std::strerror(r.err));
}

}  // namespace

void encode_frame_header(std::uint32_t type, const std::string& payload,
                         unsigned char* out) {
  put_u32(out, kFrameMagic);
  put_u32(out + 4, type);
  put_u64(out + 8, static_cast<std::uint64_t>(payload.size()));
  put_u64(out + 16, fnv1a64(payload));
}

void write_frame(int fd, std::uint32_t type, const std::string& payload) {
  if (payload.size() > kMaxFramePayload) {
    throw FrameError(FrameError::Kind::TooLarge,
                     "net: frame payload of " + std::to_string(payload.size()) +
                         " bytes exceeds the " +
                         std::to_string(kMaxFramePayload) + "-byte cap");
  }
  unsigned char header[kFrameHeaderBytes];
  encode_frame_header(type, payload, header);
  IoResult r = send_all(fd, header, sizeof(header));
  if (r.status != IoStatus::Ok) throw_io(r, "write");
  r = send_all(fd, payload);
  if (r.status != IoStatus::Ok) throw_io(r, "write");
}

bool read_frame(int fd, Frame& out) {
  unsigned char header[kFrameHeaderBytes];
  IoResult r = recv_exact(fd, header, sizeof(header));
  if (r.status == IoStatus::Eof) {
    if (r.n == 0) return false;  // clean close between frames
    throw FrameError(FrameError::Kind::Truncated,
                     "net: peer closed mid-header (" + std::to_string(r.n) +
                         " of " + std::to_string(sizeof(header)) + " bytes)");
  }
  if (r.status != IoStatus::Ok) throw_io(r, "read");

  if (get_u32(header) != kFrameMagic) {
    throw FrameError(FrameError::Kind::BadMagic,
                     "net: bad frame magic (stream out of sync?)");
  }
  out.type = get_u32(header + 4);
  const std::uint64_t length = get_u64(header + 8);
  const std::uint64_t digest = get_u64(header + 16);
  if (length > kMaxFramePayload) {
    throw FrameError(FrameError::Kind::TooLarge,
                     "net: frame length " + std::to_string(length) +
                         " exceeds the " + std::to_string(kMaxFramePayload) +
                         "-byte cap");
  }

  out.payload.resize(static_cast<std::size_t>(length));
  if (length > 0) {
    r = recv_exact(fd, out.payload.data(), out.payload.size());
    if (r.status == IoStatus::Eof) {
      throw FrameError(FrameError::Kind::Truncated,
                       "net: peer closed mid-payload (" + std::to_string(r.n) +
                           " of " + std::to_string(length) + " bytes)");
    }
    if (r.status != IoStatus::Ok) throw_io(r, "read");
  }
  if (fnv1a64(out.payload) != digest) {
    throw FrameError(FrameError::Kind::BadDigest,
                     "net: frame payload digest mismatch (type " +
                         std::to_string(out.type) + ", " +
                         std::to_string(length) + " bytes)");
  }
  return true;
}

}  // namespace darl::net
