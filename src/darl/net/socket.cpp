#include "darl/net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "darl/common/stopwatch.hpp"

namespace darl::net {
namespace {

std::string errno_text(int err) { return std::strerror(err); }

sockaddr_in loopback_addr(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  return addr;
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  DARL_CHECK(path.size() < sizeof(addr.sun_path),
             "unix socket path too long (" << path.size() << " bytes): " << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// One connect() attempt against an already-created non-blocking socket.
/// Returns 0 on success, or the failing errno.
int connect_once(int fd, const Endpoint& ep, double deadline_s) {
  int rc;
  if (ep.kind == Endpoint::Kind::Tcp) {
    const sockaddr_in addr = loopback_addr(ep.port);
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } else {
    const sockaddr_un addr = unix_addr(ep.path);
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  }
  if (rc == 0) return 0;
  if (errno != EINPROGRESS && errno != EAGAIN) return errno;

  // Non-blocking connect in flight: poll for writability, then read the
  // final disposition from SO_ERROR.
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLOUT;
  const int timeout_ms = deadline_s > 0.0 ? static_cast<int>(deadline_s * 1e3) : 0;
  for (;;) {
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return errno;
    }
    if (pr == 0) return ETIMEDOUT;
    break;
  }
  int so_error = 0;
  socklen_t len = sizeof(so_error);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) return errno;
  return so_error;
}

}  // namespace

Endpoint Endpoint::parse(const std::string& text) {
  Endpoint ep;
  if (text.rfind("tcp:", 0) == 0) {
    ep.kind = Kind::Tcp;
    const std::string port_text = text.substr(4);
    DARL_CHECK(!port_text.empty() &&
                   port_text.find_first_not_of("0123456789") == std::string::npos,
               "bad tcp endpoint '" << text << "' (want tcp:PORT)");
    ep.port = std::atoi(port_text.c_str());
    DARL_CHECK(ep.port >= 0 && ep.port <= 65535,
               "tcp port out of range in '" << text << "'");
    return ep;
  }
  if (text.rfind("unix:", 0) == 0) {
    ep.kind = Kind::Unix;
    ep.path = text.substr(5);
    DARL_CHECK(!ep.path.empty(), "empty unix socket path in '" << text << "'");
    return ep;
  }
  throw InvalidArgument("bad endpoint '" + text +
                        "' (want tcp:PORT or unix:/path)");
}

std::string Endpoint::str() const {
  return kind == Kind::Tcp ? "tcp:" + std::to_string(port) : "unix:" + path;
}

void OwnedFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Listener::~Listener() {
  if (fd_.valid() && bound_.kind == Endpoint::Kind::Unix) {
    fd_.reset();  // close before unlink so a racing connect fails cleanly
    ::unlink(bound_.path.c_str());
  }
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    if (fd_.valid() && bound_.kind == Endpoint::Kind::Unix) {
      fd_.reset();
      ::unlink(bound_.path.c_str());
    }
    fd_ = std::move(other.fd_);
    bound_ = std::move(other.bound_);
  }
  return *this;
}

void Listener::shutdown() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

Listener listen_endpoint(const Endpoint& ep, int backlog) {
  const int domain = ep.kind == Endpoint::Kind::Tcp ? AF_INET : AF_UNIX;
  OwnedFd fd(::socket(domain, SOCK_STREAM, 0));
  if (!fd.valid()) {
    throw NetError("net: socket() failed: " + errno_text(errno));
  }

  Endpoint bound = ep;
  if (ep.kind == Endpoint::Kind::Tcp) {
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    const sockaddr_in addr = loopback_addr(ep.port);
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw NetError("net: bind(127.0.0.1:" + std::to_string(ep.port) +
                     ") failed: " + errno_text(errno));
    }
  } else {
    // A stale socket file from a crashed previous run would make bind fail
    // with EADDRINUSE even though nobody is listening.
    ::unlink(ep.path.c_str());
    const sockaddr_un addr = unix_addr(ep.path);
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw NetError("net: bind(" + ep.path + ") failed: " + errno_text(errno));
    }
  }
  if (::listen(fd.get(), backlog) != 0) {
    throw NetError("net: listen(" + ep.str() + ") failed: " + errno_text(errno));
  }
  if (ep.kind == Endpoint::Kind::Tcp) {
    sockaddr_in resolved{};
    socklen_t len = sizeof(resolved);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&resolved), &len) == 0) {
      bound.port = static_cast<int>(ntohs(resolved.sin_port));
    }
  }
  return Listener(std::move(fd), std::move(bound));
}

OwnedFd accept_retry(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return OwnedFd(fd);
    if (errno == EINTR) continue;
    return OwnedFd();  // shut down or unrecoverable; errno preserved
  }
}

OwnedFd connect_endpoint(const Endpoint& ep, double deadline_s) {
  const int domain = ep.kind == Endpoint::Kind::Tcp ? AF_INET : AF_UNIX;
  Stopwatch clock;
  double backoff_s = 0.02;
  int last_err = 0;
  for (;;) {
    const double remaining = deadline_s - clock.seconds();
    if (remaining <= 0.0) break;
    OwnedFd fd(::socket(domain, SOCK_STREAM | SOCK_NONBLOCK, 0));
    if (!fd.valid()) {
      throw NetError("net: socket() failed: " + errno_text(errno));
    }
    last_err = connect_once(fd.get(), ep, remaining);
    if (last_err == 0) {
      // Back to blocking mode: the frame layer uses timeouts, not O_NONBLOCK.
      const int flags = ::fcntl(fd.get(), F_GETFL, 0);
      if (flags >= 0) ::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK);
      return fd;
    }
    // The peer not listening yet is the expected startup race; everything
    // else (including a lapsed poll) is also worth one more try until the
    // deadline, with exponential backoff to avoid a connect() busy loop.
    fd.reset();
    const double nap = std::min(backoff_s, deadline_s - clock.seconds());
    if (nap > 0.0) {
      timespec ts{};
      ts.tv_sec = static_cast<time_t>(nap);
      ts.tv_nsec = static_cast<long>((nap - static_cast<double>(ts.tv_sec)) * 1e9);
      while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
      }
    }
    backoff_s = std::min(backoff_s * 2.0, 0.5);
  }
  throw NetError("net: connect(" + ep.str() + ") failed after " +
                 std::to_string(deadline_s) + "s: " + errno_text(last_err));
}

void shutdown_socket(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void set_io_timeout(int fd, double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void set_recv_timeout(int fd, double seconds) {
  constexpr double kMinTimeout = 0.01;
  if (seconds < kMinTimeout) seconds = kMinTimeout;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

IoResult recv_some(int fd, void* buf, std::size_t cap) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, cap, 0);
    if (n > 0) return {IoStatus::Ok, static_cast<std::size_t>(n), 0};
    if (n == 0) return {IoStatus::Eof, 0, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::TimedOut, 0, errno};
    }
    return {IoStatus::Error, 0, errno};
  }
}

IoResult recv_exact(int fd, void* buf, std::size_t n) {
  std::size_t got = 0;
  char* out = static_cast<char*>(buf);
  while (got < n) {
    IoResult r = recv_some(fd, out + got, n - got);
    if (r.status != IoStatus::Ok) {
      r.n = got;
      return r;
    }
    got += r.n;
  }
  return {IoStatus::Ok, got, 0};
}

IoResult send_all(int fd, const void* buf, std::size_t n) {
  const char* data = static_cast<const char*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a reset peer must surface as EPIPE here, not kill the
    // worker process mid-campaign with SIGPIPE.
    const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return {IoStatus::TimedOut, sent, errno};
      }
      return {IoStatus::Error, sent, errno};
    }
    sent += static_cast<std::size_t>(w);
  }
  return {IoStatus::Ok, sent, 0};
}

IoResult send_all(int fd, const std::string& data) {
  return send_all(fd, data.data(), data.size());
}

std::string recv_until_eof(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const IoResult r = recv_some(fd, buf, sizeof(buf));
    if (r.status != IoStatus::Ok) break;
    out.append(buf, r.n);
  }
  return out;
}

}  // namespace darl::net
