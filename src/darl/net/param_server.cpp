#include "darl/net/param_server.hpp"

#include <sstream>
#include <utility>

#include "darl/common/error.hpp"
#include "darl/obs/metrics.hpp"

namespace darl::net {

ParamServer::ParamServer(rl::AlgoKind kind, std::size_t obs_dim,
                         std::size_t action_dim, env::ActionSpace action_space,
                         std::vector<std::size_t> hidden)
    : kind_(kind),
      obs_dim_(obs_dim),
      action_dim_(action_dim),
      action_space_(std::move(action_space)),
      hidden_(std::move(hidden)) {
  DARL_CHECK(obs_dim_ > 0 && action_dim_ > 0,
             "ParamServer needs a non-degenerate interface");
}

std::uint64_t ParamServer::publish(const Vec& params) {
  rl::Checkpoint ck;
  ck.kind = kind_;
  ck.obs_dim = obs_dim_;
  ck.action_dim = action_dim_;
  ck.params = params;

  std::ostringstream os;
  rl::save_checkpoint(os, ck);
  std::string text = os.str();

  // The store derives (and validates) the servable spec; its per-tenant
  // version ids are monotonic from 1, i.e. logical version + 1.
  store_.publish_checkpoint(kTenant, ck, action_space_, hidden_);

  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t version = next_version_++;
  ring_.emplace_back(version, std::move(text));
  while (ring_.size() > kRetainedVersions) ring_.pop_front();
  DARL_COUNTER_ADD("net.weights_published", 1);
  return version;
}

std::string ParamServer::checkpoint_text(std::uint64_t version) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [v, text] : ring_) {
    if (v == version) return text;
  }
  throw Error("ParamServer: version " + std::to_string(version) +
              " is outside the retention ring (latest " +
              std::to_string(next_version_ == 0 ? 0 : next_version_ - 1) + ")");
}

std::uint64_t ParamServer::latest_version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  DARL_CHECK(next_version_ > 0, "ParamServer: nothing published yet");
  return next_version_ - 1;
}

}  // namespace darl::net
