#include "darl/obs/metrics.hpp"

#include <algorithm>

#include "darl/common/error.hpp"

namespace darl::obs {
namespace {

std::atomic<bool> g_metrics_enabled{false};

void atomic_add_double(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void set_metrics_enabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void Gauge::add(double delta) { atomic_add_double(value_, delta); }

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  DARL_CHECK(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    DARL_CHECK(bounds_[i - 1] < bounds_[i],
               "histogram bounds must be strictly increasing");
  }
  buckets_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
}

void Histogram::observe(double v) {
  // First bound >= v; values above every bound land in the overflow bucket.
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b.load(std::memory_order_relaxed));
  return out;
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Json RegistrySnapshot::to_json() const {
  Json root = Json::object();
  Json jc = Json::object();
  for (const auto& [name, v] : counters) {
    jc.set(name, Json::integer(static_cast<std::int64_t>(v)));
  }
  root.set("counters", std::move(jc));
  Json jg = Json::object();
  for (const auto& [name, v] : gauges) jg.set(name, Json::number(v));
  root.set("gauges", std::move(jg));
  Json jh = Json::object();
  for (const auto& [name, h] : histograms) {
    Json node = Json::object();
    Json bounds = Json::array();
    for (double b : h.bounds) bounds.push_back(Json::number(b));
    node.set("bounds", std::move(bounds));
    Json counts = Json::array();
    for (std::uint64_t c : h.counts) {
      counts.push_back(Json::integer(static_cast<std::int64_t>(c)));
    }
    node.set("counts", std::move(counts));
    node.set("count", Json::integer(static_cast<std::int64_t>(h.count)));
    node.set("sum", Json::number(h.sum));
    jh.set(name, std::move(node));
  }
  root.set("histograms", std::move(jh));
  return root;
}

void RegistrySnapshot::write_jsonl(JsonlWriter& out) const {
  for (const auto& [name, v] : counters) {
    Json rec = Json::object();
    rec.set("kind", Json::string("counter"));
    rec.set("name", Json::string(name));
    rec.set("value", Json::integer(static_cast<std::int64_t>(v)));
    out.write(rec);
  }
  for (const auto& [name, v] : gauges) {
    Json rec = Json::object();
    rec.set("kind", Json::string("gauge"));
    rec.set("name", Json::string(name));
    rec.set("value", Json::number(v));
    out.write(rec);
  }
  for (const auto& [name, h] : histograms) {
    Json rec = Json::object();
    rec.set("kind", Json::string("histogram"));
    rec.set("name", Json::string(name));
    Json bounds = Json::array();
    for (double b : h.bounds) bounds.push_back(Json::number(b));
    rec.set("bounds", std::move(bounds));
    Json counts = Json::array();
    for (std::uint64_t c : h.counts) {
      counts.push_back(Json::integer(static_cast<std::int64_t>(c)));
    }
    rec.set("counts", std::move(counts));
    rec.set("count", Json::integer(static_cast<std::int64_t>(h.count)));
    rec.set("sum", Json::number(h.sum));
    out.write(rec);
  }
}

Registry& Registry::global() {
  // Leaked singleton (suppressed in tools/darl_lint.supp): call sites
  // cache references in function-local statics, which must stay valid
  // through static destruction.
  static Registry* g = new Registry();
  return *g;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  } else {
    DARL_CHECK(slot->bounds() == bounds,
               "histogram '" << name << "' re-registered with different bounds");
  }
  return *slot;
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = h->bounds();
    hs.counts = h->counts();
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace darl::obs
