#include "darl/obs/metrics.hpp"

#include <algorithm>

#include "darl/common/error.hpp"

namespace darl::obs {
namespace {

std::atomic<bool> g_metrics_enabled{false};

void atomic_add_double(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

/// Sorted-by-key copy with validated names; duplicate keys are a
/// registration error.
Labels canonical_labels(const std::string& name, const Labels& labels) {
  Labels out = labels;
  std::sort(out.begin(), out.end());
  for (std::size_t i = 0; i < out.size(); ++i) {
    DARL_CHECK(valid_metric_name(out[i].first),
               "instrument '" << name << "': label key '" << out[i].first
                              << "' must match [a-z0-9_.]+");
    DARL_CHECK(i == 0 || out[i - 1].first != out[i].first,
               "instrument '" << name << "': duplicate label key '"
                              << out[i].first << "'");
  }
  return out;
}

}  // namespace

void set_metrics_enabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

std::string instrument_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string key = name;
  key += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) key += ',';
    key += labels[i].first;
    key += "=\"";
    key += escape_label_value(labels[i].second);
    key += '"';
  }
  key += '}';
  return key;
}

void Gauge::add(double delta) { atomic_add_double(value_, delta); }

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  DARL_CHECK(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    DARL_CHECK(bounds_[i - 1] < bounds_[i],
               "histogram bounds must be strictly increasing");
  }
  buckets_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
}

void Histogram::observe(double v) {
  // First bound >= v; values above every bound land in the overflow bucket.
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b.load(std::memory_order_relaxed));
  return out;
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Json RegistrySnapshot::to_json() const {
  Json root = Json::object();
  Json jc = Json::object();
  for (const auto& [name, v] : counters) {
    jc.set(name, Json::integer(static_cast<std::int64_t>(v)));
  }
  root.set("counters", std::move(jc));
  Json jg = Json::object();
  for (const auto& [name, v] : gauges) jg.set(name, Json::number(v));
  root.set("gauges", std::move(jg));
  Json jh = Json::object();
  for (const auto& [name, h] : histograms) {
    Json node = Json::object();
    Json bounds = Json::array();
    for (double b : h.bounds) bounds.push_back(Json::number(b));
    node.set("bounds", std::move(bounds));
    Json counts = Json::array();
    for (std::uint64_t c : h.counts) {
      counts.push_back(Json::integer(static_cast<std::int64_t>(c)));
    }
    node.set("counts", std::move(counts));
    node.set("count", Json::integer(static_cast<std::int64_t>(h.count)));
    node.set("sum", Json::number(h.sum));
    jh.set(name, std::move(node));
  }
  root.set("histograms", std::move(jh));
  return root;
}

void RegistrySnapshot::write_jsonl(JsonlWriter& out) const {
  auto set_identity = [&](Json& rec, const std::string& key) {
    rec.set("name", Json::string(key));
    const auto id = ids.find(key);
    if (id != ids.end() && !id->second.labels.empty()) {
      Json labels = Json::object();
      for (const auto& [k, v] : id->second.labels) {
        labels.set(k, Json::string(v));
      }
      rec.set("metric", Json::string(id->second.name));
      rec.set("labels", std::move(labels));
    }
  };
  for (const auto& [name, v] : counters) {
    Json rec = Json::object();
    rec.set("kind", Json::string("counter"));
    set_identity(rec, name);
    rec.set("value", Json::integer(static_cast<std::int64_t>(v)));
    out.write(rec);
  }
  for (const auto& [name, v] : gauges) {
    Json rec = Json::object();
    rec.set("kind", Json::string("gauge"));
    set_identity(rec, name);
    rec.set("value", Json::number(v));
    out.write(rec);
  }
  for (const auto& [name, h] : histograms) {
    Json rec = Json::object();
    rec.set("kind", Json::string("histogram"));
    set_identity(rec, name);
    Json bounds = Json::array();
    for (double b : h.bounds) bounds.push_back(Json::number(b));
    rec.set("bounds", std::move(bounds));
    Json counts = Json::array();
    for (std::uint64_t c : h.counts) {
      counts.push_back(Json::integer(static_cast<std::int64_t>(c)));
    }
    rec.set("counts", std::move(counts));
    rec.set("count", Json::integer(static_cast<std::int64_t>(h.count)));
    rec.set("sum", Json::number(h.sum));
    out.write(rec);
  }
}

Registry& Registry::global() {
  // Leaked singleton (suppressed in tools/darl_lint.supp): call sites
  // cache instrument references in function-local statics, which must stay
  // valid through static destruction.
  static Registry* g = new Registry();
  return *g;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  DARL_CHECK(valid_metric_name(name),
             "counter name '" << name << "' must match [a-z0-9_.]+");
  Labels canonical = canonical_labels(name, labels);
  const std::string key = instrument_key(name, canonical);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[key];
  if (!slot.instrument) {
    slot.name = name;
    slot.labels = std::move(canonical);
    slot.instrument = std::make_unique<Counter>();
  }
  return *slot.instrument;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  DARL_CHECK(valid_metric_name(name),
             "gauge name '" << name << "' must match [a-z0-9_.]+");
  Labels canonical = canonical_labels(name, labels);
  const std::string key = instrument_key(name, canonical);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[key];
  if (!slot.instrument) {
    slot.name = name;
    slot.labels = std::move(canonical);
    slot.instrument = std::make_unique<Gauge>();
  }
  return *slot.instrument;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds,
                               const Labels& labels) {
  DARL_CHECK(valid_metric_name(name),
             "histogram name '" << name << "' must match [a-z0-9_.]+");
  Labels canonical = canonical_labels(name, labels);
  const std::string key = instrument_key(name, canonical);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[key];
  if (!slot.instrument) {
    slot.name = name;
    slot.labels = std::move(canonical);
    slot.instrument = std::make_unique<Histogram>(std::move(bounds));
  } else {
    DARL_CHECK(slot.instrument->bounds() == bounds,
               "histogram '" << key << "' re-registered with different bounds");
  }
  return *slot.instrument;
}

RegistrySnapshot Registry::snapshot() const {
  // Phase 1 (under the registration mutex): gather stable pointers only.
  // Entries are never erased and instruments live behind unique_ptr, so
  // the pointers survive the unlock.
  struct Ref {
    const std::string* key;
    const std::string* name;
    const Labels* labels;
    const void* instrument;
  };
  std::vector<Ref> counter_refs, gauge_refs, histogram_refs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counter_refs.reserve(counters_.size());
    for (const auto& [key, e] : counters_) {
      counter_refs.push_back({&key, &e.name, &e.labels, e.instrument.get()});
    }
    gauge_refs.reserve(gauges_.size());
    for (const auto& [key, e] : gauges_) {
      gauge_refs.push_back({&key, &e.name, &e.labels, e.instrument.get()});
    }
    histogram_refs.reserve(histograms_.size());
    for (const auto& [key, e] : histograms_) {
      histogram_refs.push_back({&key, &e.name, &e.labels, e.instrument.get()});
    }
  }

  // Phase 2 (lock-free): read the atomics and build the snapshot. Writers
  // keep running; each value is individually consistent.
  RegistrySnapshot snap;
  for (const Ref& r : counter_refs) {
    snap.counters[*r.key] = static_cast<const Counter*>(r.instrument)->value();
    snap.ids[*r.key] = InstrumentId{*r.name, *r.labels};
  }
  for (const Ref& r : gauge_refs) {
    snap.gauges[*r.key] = static_cast<const Gauge*>(r.instrument)->value();
    snap.ids[*r.key] = InstrumentId{*r.name, *r.labels};
  }
  for (const Ref& r : histogram_refs) {
    const auto* h = static_cast<const Histogram*>(r.instrument);
    HistogramSnapshot hs;
    hs.bounds = h->bounds();
    hs.counts = h->counts();
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms[*r.key] = std::move(hs);
    snap.ids[*r.key] = InstrumentId{*r.name, *r.labels};
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, e] : counters_) e.instrument->reset();
  for (auto& [key, e] : gauges_) e.instrument->reset();
  for (auto& [key, e] : histograms_) e.instrument->reset();
}

}  // namespace darl::obs
