#include "darl/obs/flight.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <csignal>
#include <cstring>
#include <fstream>
#include <mutex>

#include "darl/common/error.hpp"
#include "darl/common/jsonl.hpp"
#include "darl/common/log.hpp"
#include "darl/common/stopwatch.hpp"
#include "darl/obs/trace.hpp"

namespace darl::obs {
namespace {

std::atomic<bool> g_flight_enabled{false};

/// One seqlock slot. Every field is an atomic so concurrent writer/reader
/// access is race-free by construction; the seq protocol decides which
/// reads are coherent (see flight.hpp header comment).
struct Slot {
  std::atomic<std::uint64_t> seq{0};  ///< 0 = empty/mid-write, else ticket
  std::atomic<std::uint8_t> kind{0};
  std::atomic<std::uint64_t> t_ns{0};
  std::atomic<std::uint64_t> dur_ns{0};
  std::atomic<std::int64_t> trial{-1};
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint8_t> text_len{0};
  std::array<std::atomic<char>, kFlightMessageBytes> text{};
};

struct FlightRing {
  int tid = 0;
  std::atomic<std::uint64_t> head{0};  ///< last published ticket
  std::array<Slot, kFlightRingEvents> slots{};
};

std::array<std::atomic<FlightRing*>, kFlightMaxRings> g_rings{};
std::atomic<std::size_t> g_ring_count{0};

FlightRing* make_ring() {
  // Leaked by design (see tools/darl_lint.supp): the fatal-signal handler
  // walks the directory at an arbitrary moment, possibly after the owning
  // thread has exited, so a ring must never be freed.
  const std::size_t idx = g_ring_count.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kFlightMaxRings) return nullptr;
  auto* ring = new FlightRing();
  ring->tid = darl::thread_ordinal();
  g_rings[idx].store(ring, std::memory_order_release);
  return ring;
}

FlightRing* local_ring() {
  thread_local FlightRing* ring = make_ring();
  return ring;
}

void record(FlightEvent::Kind kind, const char* name, std::uint64_t t_ns,
            std::uint64_t dur_ns, const char* text, std::size_t text_len) {
  FlightRing* ring = local_ring();
  if (ring == nullptr) return;
  const std::uint64_t ticket =
      ring->head.load(std::memory_order_relaxed) + 1;
  Slot& s = ring->slots[ticket % kFlightRingEvents];
  // Writer protocol: invalidate, #StoreStore fence, payload, publish.
  s.seq.store(0, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  s.t_ns.store(t_ns, std::memory_order_relaxed);
  s.dur_ns.store(dur_ns, std::memory_order_relaxed);
  s.trial.store(current_trial(), std::memory_order_relaxed);
  s.name.store(name, std::memory_order_relaxed);
  const std::size_t n = std::min(text_len, kFlightMessageBytes);
  for (std::size_t i = 0; i < n; ++i) {
    s.text[i].store(text[i], std::memory_order_relaxed);
  }
  s.text_len.store(static_cast<std::uint8_t>(n), std::memory_order_relaxed);
  s.seq.store(ticket, std::memory_order_release);
  ring->head.store(ticket, std::memory_order_release);
}

/// Coherent copy of one slot, or false when the slot is empty or was
/// overwritten mid-read (seqlock validation failed).
bool read_slot(const Slot& s, int tid, FlightEvent& out) {
  const std::uint64_t before = s.seq.load(std::memory_order_acquire);
  if (before == 0) return false;
  FlightEvent ev;
  ev.kind = static_cast<FlightEvent::Kind>(
      s.kind.load(std::memory_order_relaxed));
  ev.t_ns = s.t_ns.load(std::memory_order_relaxed);
  ev.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
  ev.trial = s.trial.load(std::memory_order_relaxed);
  const char* name = s.name.load(std::memory_order_relaxed);
  const std::size_t len = s.text_len.load(std::memory_order_relaxed);
  char text[kFlightMessageBytes];
  for (std::size_t i = 0; i < len && i < kFlightMessageBytes; ++i) {
    text[i] = s.text[i].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (s.seq.load(std::memory_order_relaxed) != before) return false;
  ev.order = before;
  ev.tid = tid;
  ev.name = name != nullptr ? name : "";
  ev.text.assign(text, std::min(len, kFlightMessageBytes));
  out = std::move(ev);
  return true;
}

std::size_t ring_count() {
  return std::min(g_ring_count.load(std::memory_order_acquire),
                  kFlightMaxRings);
}

const char* kind_tag(FlightEvent::Kind kind) {
  switch (kind) {
    case FlightEvent::Kind::Span: return "span";
    case FlightEvent::Kind::Log: return "log";
    case FlightEvent::Kind::Note: return "note";
  }
  return "note";
}

// --- fatal-dump path configuration -----------------------------------------

std::mutex g_path_mutex;
char g_dump_path[512] = {0};  ///< read lock-free by the signal handler

void log_sink(darl::LogLevel level, const std::string& line) {
  const char* tag = "info";
  switch (level) {
    case darl::LogLevel::Debug: tag = "debug"; break;
    case darl::LogLevel::Info: tag = "info"; break;
    case darl::LogLevel::Warn: tag = "warn"; break;
    case darl::LogLevel::Error: tag = "error"; break;
    case darl::LogLevel::Off: return;
  }
  flight_record_log(tag, line);
}

// --- async-signal-safe formatting ------------------------------------------

void fd_write(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w <= 0) return;
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

void fd_write_cstr(int fd, const char* s) { fd_write(fd, s, std::strlen(s)); }

void fd_write_u64(int fd, std::uint64_t v) {
  char buf[24];
  int i = sizeof(buf);
  do {
    buf[--i] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v > 0);
  fd_write(fd, buf + i, sizeof(buf) - static_cast<std::size_t>(i));
}

void fd_write_i64(int fd, std::int64_t v) {
  if (v < 0) {
    fd_write(fd, "-", 1);
    fd_write_u64(fd, static_cast<std::uint64_t>(-(v + 1)) + 1);
  } else {
    fd_write_u64(fd, static_cast<std::uint64_t>(v));
  }
}

/// JSON-string bytes with the restraint a signal handler allows: quote,
/// backslash and control characters become '?'.
void fd_write_sanitized(int fd, const char* s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    char c = s[i];
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) {
      c = '?';
    }
    fd_write(fd, &c, 1);
  }
}

void fault_dump_ring(int fd, const FlightRing& ring) {
  // Oldest-first: tickets head-K+1 .. head, skipping torn/empty slots.
  const std::uint64_t head = ring.head.load(std::memory_order_acquire);
  const std::uint64_t span =
      std::min<std::uint64_t>(head, kFlightRingEvents);
  for (std::uint64_t t = head - span + 1; t <= head && head > 0; ++t) {
    const Slot& s = ring.slots[t % kFlightRingEvents];
    const std::uint64_t before = s.seq.load(std::memory_order_acquire);
    if (before != t) continue;
    const auto kind = static_cast<FlightEvent::Kind>(
        s.kind.load(std::memory_order_relaxed));
    const std::uint64_t t_ns = s.t_ns.load(std::memory_order_relaxed);
    const std::uint64_t dur_ns = s.dur_ns.load(std::memory_order_relaxed);
    const std::int64_t trial = s.trial.load(std::memory_order_relaxed);
    const char* name = s.name.load(std::memory_order_relaxed);
    const std::size_t len = std::min<std::size_t>(
        s.text_len.load(std::memory_order_relaxed), kFlightMessageBytes);
    char text[kFlightMessageBytes];
    for (std::size_t i = 0; i < len; ++i) {
      text[i] = s.text[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != before) continue;

    fd_write_cstr(fd, "{\"kind\":\"");
    fd_write_cstr(fd, kind_tag(kind));
    fd_write_cstr(fd, "\",\"order\":");
    fd_write_u64(fd, t);
    fd_write_cstr(fd, ",\"t_ns\":");
    fd_write_u64(fd, t_ns);
    fd_write_cstr(fd, ",\"dur_ns\":");
    fd_write_u64(fd, dur_ns);
    fd_write_cstr(fd, ",\"tid\":");
    fd_write_i64(fd, ring.tid);
    fd_write_cstr(fd, ",\"trial\":");
    fd_write_i64(fd, trial);
    fd_write_cstr(fd, ",\"name\":\"");
    if (name != nullptr) fd_write_sanitized(fd, name, std::strlen(name));
    fd_write_cstr(fd, "\",\"text\":\"");
    fd_write_sanitized(fd, text, len);
    fd_write_cstr(fd, "\"}\n");
  }
}

std::atomic<bool> g_handler_installed{false};

void flight_fatal_handler(int sig) {
  flight_dump_on_fault();
  std::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void set_flight_enabled(bool enabled) {
  g_flight_enabled.store(enabled, std::memory_order_relaxed);
}

bool flight_enabled() {
  return g_flight_enabled.load(std::memory_order_relaxed);
}

void flight_record_span(const char* name, std::uint64_t start_ns,
                        std::uint64_t end_ns) {
  if (!flight_enabled()) return;
  record(FlightEvent::Kind::Span, name, start_ns,
         end_ns >= start_ns ? end_ns - start_ns : 0, nullptr, 0);
}

void flight_note(const char* tag, const std::string& text) {
  if (!flight_enabled()) return;
  record(FlightEvent::Kind::Note, tag, process_uptime_ns(), 0, text.data(),
         text.size());
}

void flight_record_log(const char* level_tag, const std::string& line) {
  if (!flight_enabled()) return;
  record(FlightEvent::Kind::Log, level_tag, process_uptime_ns(), 0,
         line.data(), line.size());
}

std::vector<FlightEvent> flight_collect() {
  std::vector<FlightEvent> out;
  const std::size_t n = ring_count();
  for (std::size_t i = 0; i < n; ++i) {
    const FlightRing* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    for (const Slot& s : ring->slots) {
      FlightEvent ev;
      if (read_slot(s, ring->tid, ev)) out.push_back(std::move(ev));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              if (a.t_ns != b.t_ns) return a.t_ns < b.t_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.order < b.order;
            });
  return out;
}

void flight_clear() {
  const std::size_t n = ring_count();
  for (std::size_t i = 0; i < n; ++i) {
    FlightRing* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    for (Slot& s : ring->slots) s.seq.store(0, std::memory_order_relaxed);
  }
}

std::size_t flight_dump_jsonl(std::ostream& out) {
  JsonlWriter writer(out);
  for (const FlightEvent& ev : flight_collect()) {
    Json rec = Json::object();
    rec.set("kind", Json::string(kind_tag(ev.kind)));
    rec.set("order", Json::integer(static_cast<std::int64_t>(ev.order)));
    rec.set("t_ns", Json::integer(static_cast<std::int64_t>(ev.t_ns)));
    if (ev.kind == FlightEvent::Kind::Span) {
      rec.set("dur_ns", Json::integer(static_cast<std::int64_t>(ev.dur_ns)));
    }
    rec.set("tid", Json::integer(ev.tid));
    rec.set("trial", Json::integer(ev.trial));
    rec.set("name", Json::string(ev.name));
    if (!ev.text.empty()) rec.set("text", Json::string(ev.text));
    writer.write(rec);
  }
  return writer.records();
}

std::size_t flight_dump_to_path(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  DARL_CHECK(out.good(), "cannot open flight dump path '" << path << "'");
  return flight_dump_jsonl(out);
}

void set_flight_dump_path(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_path_mutex);
  const std::size_t n = std::min(path.size(), sizeof(g_dump_path) - 1);
  std::memcpy(g_dump_path, path.data(), n);
  g_dump_path[n] = '\0';
}

std::string flight_dump_path() {
  std::lock_guard<std::mutex> lock(g_path_mutex);
  return g_dump_path;
}

void flight_dump_on_fault() {
  // Async-signal-safe from here down: open/write/close and manual
  // formatting only. The path buffer is read without the mutex — set it
  // before installing the handler.
  if (g_dump_path[0] == '\0') return;
  const int fd =
      ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  const std::size_t n = ring_count();
  for (std::size_t i = 0; i < n; ++i) {
    const FlightRing* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring != nullptr) fault_dump_ring(fd, *ring);
  }
  ::close(fd);
}

void install_flight_signal_handler() {
  if (g_handler_installed.exchange(true, std::memory_order_relaxed)) return;
  for (int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT}) {
    std::signal(sig, &flight_fatal_handler);
  }
}

void enable_flight() {
  set_flight_enabled(true);
  darl::set_log_sink(&log_sink);
}

void disable_flight() {
  set_flight_enabled(false);
  darl::set_log_sink(nullptr);
}

}  // namespace darl::obs
