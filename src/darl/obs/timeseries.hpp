// darl/obs/timeseries.hpp
//
// Periodic registry sampler: a background thread snapshots a Registry
// every `period_ms` into fixed-capacity per-instrument ring buffers, so a
// live process carries a bounded recent history of every counter, gauge
// and histogram. From the rings two windowed derivations fall out:
//   - rate_per_s(): (last - first) / dt over the retained window for
//     cumulative instruments (counters, histogram counts);
//   - window_percentile(): percentile of only the observations that landed
//     inside the window, from the difference of the first and last
//     cumulative bucket vectors of a histogram ring.
// The exporter embeds to_json() tails into /snapshot.json and darl_top
// renders them. Memory is bounded: capacity points per instrument,
// allocated lazily the first time an instrument appears in a sample.
//
// sample_once() is public so tests (and one-shot CLI paths) can drive the
// sampler deterministically without the thread.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "darl/common/jsonl.hpp"
#include "darl/common/thread_safety.hpp"
#include "darl/obs/metrics.hpp"

namespace darl::obs {

struct TimeSeriesOptions {
  /// Ring capacity (points retained) per instrument.
  std::size_t capacity = 240;
  /// Sampling cadence for the background thread.
  int period_ms = 250;
  /// Registry to sample; nullptr means Registry::global().
  Registry* registry = nullptr;
};

/// One retained sample of a scalar instrument (counter or gauge).
/// Timestamps are process_uptime_ns() values.
struct SeriesPoint {
  std::uint64_t t_ns = 0;
  double value = 0.0;
};

/// One retained sample of a histogram: cumulative bucket counts (size
/// bounds.size() + 1) plus cumulative count/sum at sample time.
struct HistogramPoint {
  std::uint64_t t_ns = 0;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;
};

class TimeSeries {
 public:
  explicit TimeSeries(TimeSeriesOptions options = {});
  ~TimeSeries();

  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  /// Launch the sampler thread (idempotent).
  void start();
  /// Stop and join the sampler thread (idempotent; called by dtor).
  void stop();
  bool running() const;

  /// Take one sample now (also what the background thread does each tick).
  void sample_once();

  std::size_t capacity() const { return options_.capacity; }
  int period_ms() const { return options_.period_ms; }

  /// Total samples taken so far (across all instruments).
  std::uint64_t samples_taken() const;

  /// Retained points for a scalar instrument key (counter value or gauge),
  /// oldest first. Empty when the key is unknown.
  std::vector<SeriesPoint> scalar_series(const std::string& key) const;

  /// Windowed rate for a cumulative scalar series: (last - first) / dt over
  /// the retained ring. nullopt when fewer than two points are retained or
  /// the window has zero duration.
  std::optional<double> rate_per_s(const std::string& key) const;

  /// Percentile (p in [0,100]) of the observations a histogram recorded
  /// *within* the retained window, from the delta of its cumulative bucket
  /// vectors. nullopt when the key is unknown, fewer than two points are
  /// retained, or no observations landed in the window.
  std::optional<double> window_percentile(const std::string& key,
                                          double p) const;

  /// Ring tails as one Json object keyed by instrument: scalar series as
  /// {"points": [[t_s, v], ...], "rate_per_s": r}; histograms as
  /// {"window": {"count": n, "p50": ..., "p99": ...}, "rate_per_s": r}.
  /// At most `max_points` trailing points per scalar series.
  Json to_json(std::size_t max_points = 64) const;

 private:
  template <typename Point>
  struct Ring {
    std::vector<Point> slots;  ///< size <= capacity; grows then wraps
    std::size_t next = 0;      ///< insertion index once full
    void push(Point p, std::size_t capacity);
    std::vector<Point> ordered() const;  ///< oldest first
  };

  void run_loop();

  TimeSeriesOptions options_;
  Registry* registry_;

  mutable std::mutex mutex_;  ///< guards rings + samples_
  std::map<std::string, Ring<SeriesPoint>> scalars_ DARL_GUARDED_BY(mutex_);
  std::map<std::string, Ring<HistogramPoint>> histograms_
      DARL_GUARDED_BY(mutex_);
  std::uint64_t samples_ DARL_GUARDED_BY(mutex_) = 0;

  /// Guards the sampler thread lifecycle + stop flag. run_loop() holds it
  /// between waits but drops it around sample_once(), which takes mutex_
  /// — hence the declared order: never take thread_mutex_ under mutex_.
  mutable std::mutex thread_mutex_ DARL_ACQUIRED_BEFORE(mutex_);
  std::condition_variable cv_;
  std::thread thread_;
  bool stop_requested_ DARL_GUARDED_BY(thread_mutex_) = false;
  bool thread_running_ DARL_GUARDED_BY(thread_mutex_) = false;
};

}  // namespace darl::obs
