#include "darl/obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "darl/common/log.hpp"

namespace darl::obs {
namespace {

// Per-thread buffers are flushed into the process-wide trace when they
// reach kFlushAt spans (and at thread exit); the trace itself is capped at
// kMaxSpans to bound memory on runaway instrumentation.
constexpr std::size_t kFlushAt = 4096;
constexpr std::size_t kMaxSpans = 1u << 20;

std::atomic<bool> g_tracing_enabled{false};
thread_local std::int64_t t_current_trial = -1;

struct ThreadBuffer;

// Process-wide trace. Leaked singleton: thread-exit flushes may run during
// static destruction.
struct GlobalTrace {
  std::mutex mutex;
  std::vector<SpanRecord> spans;
  std::vector<ThreadBuffer*> live;
  std::size_t dropped = 0;

  void append_locked(std::vector<SpanRecord>& batch) {
    const std::size_t room =
        spans.size() < kMaxSpans ? kMaxSpans - spans.size() : 0;
    const std::size_t take = std::min(room, batch.size());
    spans.insert(spans.end(), batch.begin(),
                 batch.begin() + static_cast<std::ptrdiff_t>(take));
    dropped += batch.size() - take;
    batch.clear();
  }
};

GlobalTrace& trace() {
  // Leaked singleton (suppressed in tools/darl_lint.supp): per-thread
  // span sinks flush into it during static destruction, so it must
  // outlive every ThreadSink.
  static GlobalTrace* g = new GlobalTrace();
  return *g;
}

// One per thread that ever emitted a span. Lock ordering: every
// multi-lock path (flush, thread exit, collect_spans, clear_spans) takes
// global-then-local; the owner thread holds `mutex` alone only for the
// plain push. Flushing under both locks means a batch moves from `local`
// to the global trace atomically with respect to collectors — a
// concurrent collect_spans() can never observe the batch in neither
// place, so its result size is monotone while emitters run.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<SpanRecord> local;

  ThreadBuffer() {
    local.reserve(kFlushAt);
    GlobalTrace& g = trace();
    std::lock_guard<std::mutex> lock(g.mutex);
    g.live.push_back(this);
  }

  ~ThreadBuffer() {
    GlobalTrace& g = trace();
    std::lock_guard<std::mutex> lock(g.mutex);
    g.live.erase(std::remove(g.live.begin(), g.live.end(), this), g.live.end());
    std::lock_guard<std::mutex> local_lock(mutex);
    g.append_locked(local);
  }

  void push(const SpanRecord& r) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      local.push_back(r);
      if (local.size() < kFlushAt) return;
    }
    GlobalTrace& g = trace();
    std::lock_guard<std::mutex> lock(g.mutex);
    std::lock_guard<std::mutex> local_lock(mutex);
    if (local.size() >= kFlushAt) {
      g.append_locked(local);  // clears `local`
      local.reserve(kFlushAt);
    }
  }
};

ThreadBuffer& thread_buffer() {
  thread_local ThreadBuffer buffer;
  return buffer;
}

}  // namespace

void set_tracing_enabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

bool tracing_enabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool enabled) {
  set_tracing_enabled(enabled);
  set_metrics_enabled(enabled);
}

std::int64_t current_trial() { return t_current_trial; }

TrialScope::TrialScope(std::int64_t trial_id) : previous_(t_current_trial) {
  t_current_trial = trial_id;
}

TrialScope::~TrialScope() { t_current_trial = previous_; }

namespace detail {

void finish_span(const char* name, std::uint64_t start_ns, const char* k1,
                 std::int64_t v1, const char* k2, std::int64_t v2) {
  const std::uint64_t end_ns = process_uptime_ns();
  if (flight_enabled()) flight_record_span(name, start_ns, end_ns);
  if (!tracing_enabled()) return;
  SpanRecord r;
  r.name = name;
  r.start_ns = start_ns;
  r.end_ns = end_ns;
  r.tid = thread_ordinal();
  r.trial = t_current_trial;
  r.k1 = k1;
  r.v1 = v1;
  r.k2 = k2;
  r.v2 = v2;
  thread_buffer().push(r);
}

}  // namespace detail

std::vector<SpanRecord> collect_spans() {
  GlobalTrace& g = trace();
  std::lock_guard<std::mutex> lock(g.mutex);
  std::vector<SpanRecord> out = g.spans;
  for (ThreadBuffer* b : g.live) {
    std::lock_guard<std::mutex> local_lock(b->mutex);
    out.insert(out.end(), b->local.begin(), b->local.end());
  }
  return out;
}

void clear_spans() {
  GlobalTrace& g = trace();
  std::lock_guard<std::mutex> lock(g.mutex);
  g.spans.clear();
  g.dropped = 0;
  for (ThreadBuffer* b : g.live) {
    std::lock_guard<std::mutex> local_lock(b->mutex);
    b->local.clear();
  }
}

std::size_t spans_dropped() {
  GlobalTrace& g = trace();
  std::lock_guard<std::mutex> lock(g.mutex);
  return g.dropped;
}

Json chrome_trace_json(const std::vector<SpanRecord>& spans) {
  Json events = Json::array();
  for (const SpanRecord& s : spans) {
    Json e = Json::object();
    e.set("name", Json::string(s.name));
    e.set("cat", Json::string("darl"));
    e.set("ph", Json::string("X"));
    e.set("ts", Json::number(static_cast<double>(s.start_ns) / 1e3));
    e.set("dur",
          Json::number(static_cast<double>(s.end_ns - s.start_ns) / 1e3));
    e.set("pid", Json::integer(1));
    e.set("tid", Json::integer(s.tid));
    if (s.trial >= 0 || s.k1 != nullptr) {
      Json args = Json::object();
      if (s.trial >= 0) args.set("trial", Json::integer(s.trial));
      if (s.k1 != nullptr) args.set(s.k1, Json::integer(s.v1));
      if (s.k2 != nullptr) args.set(s.k2, Json::integer(s.v2));
      e.set("args", std::move(args));
    }
    events.push_back(std::move(e));
  }
  Json root = Json::object();
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", Json::string("ms"));
  return root;
}

}  // namespace darl::obs
