#include "darl/obs/export.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "darl/common/error.hpp"
#include "darl/common/log.hpp"
#include "darl/common/stopwatch.hpp"
#include "darl/net/socket.hpp"

namespace darl::obs {
namespace {

/// Prometheus metric name: the registry charset is [a-z0-9_.] and the
/// exposition charset is [a-zA-Z0-9_:], so mapping '.' to '_' suffices.
std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.') c = '_';
  }
  return out;
}

/// Shortest-faithful double formatting ("%g" with enough digits to
/// round-trip typical telemetry values, without trailing-zero noise).
std::string prom_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// `{k1="v1",k2="v2"}` (with `extra_key`/`extra_value` appended when
/// `extra_key` is non-null), or "" when there are no labels at all.
std::string prom_labels(const Labels& labels, const char* extra_key = nullptr,
                        const std::string& extra_value = std::string()) {
  if (labels.empty() && extra_key == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += prom_name(k);
    out += "=\"";
    out += escape_label_value(v);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
  return out;
}

const Labels& labels_for(const RegistrySnapshot& snap, const std::string& key) {
  static const Labels kEmpty;
  const auto it = snap.ids.find(key);
  return it != snap.ids.end() ? it->second.labels : kEmpty;
}

std::string base_name_for(const RegistrySnapshot& snap,
                          const std::string& key) {
  const auto it = snap.ids.find(key);
  return it != snap.ids.end() ? it->second.name : key;
}

}  // namespace

std::string prometheus_text(const RegistrySnapshot& snap) {
  std::string out;
  // The snapshot maps are keyed by the flattened instrument key, which
  // starts with the base name, so all series of one family are adjacent:
  // emit the # TYPE header on family change.
  std::string family;
  for (const auto& [key, v] : snap.counters) {
    const std::string name = prom_name(base_name_for(snap, key));
    if (name != family) {
      family = name;
      out += "# TYPE " + name + " counter\n";
    }
    out += name + prom_labels(labels_for(snap, key)) + ' ' +
           std::to_string(v) + '\n';
  }
  family.clear();
  for (const auto& [key, v] : snap.gauges) {
    const std::string name = prom_name(base_name_for(snap, key));
    if (name != family) {
      family = name;
      out += "# TYPE " + name + " gauge\n";
    }
    out += name + prom_labels(labels_for(snap, key)) + ' ' + prom_number(v) +
           '\n';
  }
  family.clear();
  for (const auto& [key, h] : snap.histograms) {
    const std::string name = prom_name(base_name_for(snap, key));
    const Labels& labels = labels_for(snap, key);
    if (name != family) {
      family = name;
      out += "# TYPE " + name + " histogram\n";
    }
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.counts.size() ? h.counts[i] : 0;
      out += name + "_bucket" +
             prom_labels(labels, "le", prom_number(h.bounds[i])) + ' ' +
             std::to_string(cumulative) + '\n';
    }
    out += name + "_bucket" + prom_labels(labels, "le", "+Inf") + ' ' +
           std::to_string(h.count) + '\n';
    out += name + "_sum" + prom_labels(labels) + ' ' + prom_number(h.sum) +
           '\n';
    out += name + "_count" + prom_labels(labels) + ' ' +
           std::to_string(h.count) + '\n';
  }
  return out;
}

namespace {

std::string http_response(int status, const std::string& content_type,
                          const std::string& body) {
  const char* reason = "OK";
  switch (status) {
    case 200: reason = "OK"; break;
    case 400: reason = "Bad Request"; break;
    case 404: reason = "Not Found"; break;
    case 405: reason = "Method Not Allowed"; break;
    case 408: reason = "Request Timeout"; break;
    default: reason = "Error"; break;
  }
  std::string out = "HTTP/1.0 " + std::to_string(status) + ' ' + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

/// Best-effort response write (a vanished peer is the client's problem,
/// not the exporter's). net::send_all retries EINTR and never raises
/// SIGPIPE.
void send_response(int fd, const std::string& data) {
  static_cast<void>(net::send_all(fd, data));
}

}  // namespace

Exporter::Exporter(ExporterOptions options)
    : options_(options),
      registry_(options.registry != nullptr ? options.registry
                                            : &Registry::global()) {}

Exporter::~Exporter() { stop(); }

void Exporter::start() {
  DARL_CHECK(!started_, "Exporter::start() called twice");
  DARL_CHECK(options_.port >= 0 && options_.port <= 65535,
             "invalid obs port " << options_.port);

  net::Endpoint ep;
  ep.kind = net::Endpoint::Kind::Tcp;
  ep.port = options_.port;
  try {
    listener_ = net::listen_endpoint(ep, 16);
  } catch (const net::NetError& e) {
    throw Error("obs exporter: " + std::string(e.what()));
  }
  port_ = listener_.endpoint().port;

  stop_requested_.store(false, std::memory_order_relaxed);
  const std::size_t pool =
      options_.handler_threads > 0 ? options_.handler_threads : 1;
  handlers_.reserve(pool);
  for (std::size_t i = 0; i < pool; ++i) {
    handlers_.emplace_back([this] { handler_loop(); });
  }
  thread_ = std::thread([this] { accept_loop(); });
  started_ = true;
}

void Exporter::stop() {
  if (!started_) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  // Unblock the accept() in the loop thread; close happens after the join
  // so the fd number cannot be reused out from under the loop.
  listener_.shutdown();
  thread_.join();
  // Handlers drain in-flight connections (each bounded by the connection
  // deadline), then observe stop and exit; fds still pending un-handled
  // are closed unanswered.
  conn_cv_.notify_all();
  for (std::thread& handler : handlers_) handler.join();
  handlers_.clear();
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const int fd : pending_conns_) ::close(fd);
    pending_conns_.clear();
  }
  listener_ = net::Listener();
  started_ = false;
}

bool Exporter::running() const {
  return started_ && !stop_requested_.load(std::memory_order_relaxed);
}

void Exporter::accept_loop() {
  // Backlog beyond which accepted connections are shed instead of queued:
  // with every handler pinned by a slow client, queueing more work only
  // defers the pain — close immediately and let the scraper retry.
  const std::size_t max_pending = handlers_.size() * 8;
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    // accept_retry handles EINTR; an invalid fd means the listening socket
    // was shut down (stop) or is gone — nothing to recover either way.
    net::OwnedFd conn = net::accept_retry(listener_.fd());
    if (!conn.valid()) break;
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      if (pending_conns_.size() >= max_pending) {
        shed = true;
      } else {
        pending_conns_.push_back(conn.release());
      }
    }
    if (shed) {
      conn.reset();
      dropped_.fetch_add(1, std::memory_order_relaxed);
    } else {
      conn_cv_.notify_one();
    }
  }
}

void Exporter::handler_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(conn_mutex_);
      conn_cv_.wait(lock, [&] {
        return stop_requested_.load(std::memory_order_relaxed) ||
               !pending_conns_.empty();
      });
      if (pending_conns_.empty()) return;  // stopping and drained
      fd = pending_conns_.front();
      pending_conns_.pop_front();
    }
    handle_connection(fd);
  }
}

void Exporter::handle_connection(int fd) {
  net::set_io_timeout(fd, 2.0);
  // Read until the end of the request line, under a *total* wall-clock
  // deadline and a bounded recv() count: a drip-feeding client sending one
  // byte per read runs out of read budget, a silent one runs out of clock.
  // Either way the handler is back in the pool within connection_deadline_s.
  Stopwatch deadline;
  std::string request;
  char buf[1024];
  std::size_t reads = 0;
  bool timed_out = false;
  while (request.find('\n') == std::string::npos && request.size() < 8192) {
    const double remaining_s =
        options_.connection_deadline_s - deadline.seconds();
    if (remaining_s <= 0.0 || reads >= options_.max_request_reads) {
      timed_out = true;
      break;
    }
    net::set_recv_timeout(fd, remaining_s);
    const net::IoResult r = net::recv_some(fd, buf, sizeof(buf));
    ++reads;
    if (r.status != net::IoStatus::Ok) {
      // A recv timeout (the tail of the wall-clock budget) is a deadline
      // expiry, not a malformed request; EOF or an error ends the read and
      // we parse whatever arrived.
      if (r.status == net::IoStatus::TimedOut) timed_out = true;
      break;
    }
    request.append(buf, r.n);
  }
  const std::size_t eol = request.find('\n');
  if (timed_out && eol == std::string::npos) {
    send_response(fd, http_response(408, "text/plain", "request timeout\n"));
    requests_.fetch_add(1, std::memory_order_relaxed);
    dropped_.fetch_add(1, std::memory_order_relaxed);
    ::close(fd);
    return;
  }
  std::string line =
      eol == std::string::npos ? request : request.substr(0, eol);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  send_response(fd, handle_request(line));
  requests_.fetch_add(1, std::memory_order_relaxed);
  ::close(fd);
}

std::string Exporter::handle_request(const std::string& request_line) const {
  // Expect `METHOD <path> HTTP/1.x`.
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      request_line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    return http_response(400, "text/plain", "bad request\n");
  }
  const std::string method = request_line.substr(0, sp1);
  std::string path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (const std::size_t q = path.find('?'); q != std::string::npos) {
    path.resize(q);  // queries are accepted and ignored
  }
  if (method != "GET") {
    return http_response(405, "text/plain", "only GET is supported\n");
  }

  if (path == "/healthz") {
    return http_response(200, "text/plain", "ok\n");
  }
  if (path == "/metrics") {
    return http_response(200, "text/plain; version=0.0.4",
                         prometheus_text(registry_->snapshot()));
  }
  if (path == "/snapshot.json") {
    Json root = Json::object();
    root.set("uptime_s",
             Json::number(static_cast<double>(process_uptime_ns()) * 1e-9));
    root.set("metrics", registry_->snapshot().to_json());
    if (options_.timeseries != nullptr) {
      root.set("series", options_.timeseries->to_json());
    }
    return http_response(200, "application/json", root.dump() + "\n");
  }
  return http_response(404, "text/plain", "not found\n");
}

HttpResponse http_get(int port, const std::string& path) {
  net::Endpoint ep;
  ep.kind = net::Endpoint::Kind::Tcp;
  ep.port = port;
  net::OwnedFd fd;
  try {
    // A short connect deadline (with retry-on-refused underneath) keeps
    // the fail-fast behaviour callers expect against a dead port.
    fd = net::connect_endpoint(ep, /*deadline_s=*/0.5);
  } catch (const net::NetError& e) {
    throw Error("http_get: " + std::string(e.what()));
  }
  net::set_io_timeout(fd.get(), 5.0);
  send_response(fd.get(),
                "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n"
                "Connection: close\r\n\r\n");
  const std::string response = net::recv_until_eof(fd.get());
  fd.reset();

  HttpResponse out;
  const std::size_t eol = response.find("\r\n");
  if (eol == std::string::npos) {
    throw Error("http_get: truncated response from port " +
                std::to_string(port));
  }
  const std::string status_line = response.substr(0, eol);
  const std::size_t sp = status_line.find(' ');
  if (sp == std::string::npos) {
    throw Error("http_get: malformed status line: " + status_line);
  }
  out.status = std::atoi(status_line.c_str() + sp + 1);
  const std::size_t body_at = response.find("\r\n\r\n");
  out.body = body_at == std::string::npos ? std::string()
                                          : response.substr(body_at + 4);
  return out;
}

}  // namespace darl::obs
