// darl/obs/flight.hpp
//
// Flight recorder: every thread keeps a fixed ring of its last K telemetry
// events (finished spans, log lines, explicit notes). The rings cost a few
// relaxed atomic stores per event while the process is healthy and are only
// ever read out when something goes wrong: an injected/real trial fault in
// a campaign, or a fatal signal. The dump is a JSONL artifact — the last
// ~K*threads events, globally ordered — so a crash in hour 30 of a
// campaign stops being unexplainable.
//
// Concurrency design (and why TSan agrees it is clean):
//   - Each ring has ONE writer (its owning thread). Readers (dump paths,
//     possibly a crashing sibling thread) never block it.
//   - Every slot is a seqlock whose payload fields are themselves atomics
//     (including the message bytes, stored as atomic<char>): the writer
//     stores seq=0 (relaxed), writes the payload (relaxed), then publishes
//     seq=ticket (release). A reader loads seq (acquire), copies the
//     payload (relaxed), issues an acquire fence, and re-reads seq: a
//     changed ticket means a torn read and the slot is skipped. No field is
//     ever touched non-atomically, so there is no data race to report —
//     only values that are provably discarded.
//   - Rings register themselves in a fixed global directory (atomic
//     pointer array + release-published count) and are intentionally
//     leaked, so the fatal-signal handler can walk every ring without
//     locks and without racing thread exit.
//
// The fatal-signal dump uses only async-signal-safe calls (open/write,
// manual integer formatting). Hook it up with install_flight_signal_handler
// after set_flight_dump_path.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace darl::obs {

/// Runtime gate (default off). Recording while disabled is a single
/// relaxed atomic-bool load.
void set_flight_enabled(bool enabled);
bool flight_enabled();

/// Events retained per thread ring.
inline constexpr std::size_t kFlightRingEvents = 128;
/// Message payload bytes retained per event (longer messages truncate).
inline constexpr std::size_t kFlightMessageBytes = 120;
/// Rings the global directory can hold; threads beyond this record nothing.
inline constexpr std::size_t kFlightMaxRings = 256;

/// One decoded event, as returned by flight_collect().
struct FlightEvent {
  enum class Kind : std::uint8_t { Span = 0, Log = 1, Note = 2 };
  Kind kind = Kind::Note;
  std::uint64_t order = 0;  ///< per-ring ticket (monotonic within a thread)
  std::uint64_t t_ns = 0;   ///< process_uptime_ns() at record time
  std::uint64_t dur_ns = 0;  ///< spans only
  int tid = 0;               ///< darl::thread_ordinal() of the recorder
  std::int64_t trial = -1;   ///< obs::current_trial() at record time
  std::string name;          ///< span name / note tag / log level tag
  std::string text;          ///< log line or note message (spans: empty)
};

/// Record a finished span (called by obs tracing when flight recording is
/// on). `name` must be a string literal (the ring stores the pointer).
void flight_record_span(const char* name, std::uint64_t start_ns,
                        std::uint64_t end_ns);

/// Record a free-form note, e.g. flight_note("trial_failure", err.what()).
/// `tag` must be a string literal; `text` is copied (and truncated to
/// kFlightMessageBytes).
void flight_note(const char* tag, const std::string& text);

/// Record a log line (wired into darl::set_log_sink by enable_flight()).
void flight_record_log(const char* level_tag, const std::string& line);

/// Decode every ring into events, globally ordered by timestamp. Torn
/// slots (overwritten mid-read) are skipped, never invented.
std::vector<FlightEvent> flight_collect();

/// Drop all recorded events. Only meaningful while recorder threads are
/// quiescent (tests).
void flight_clear();

/// Write flight_collect() as JSONL ({"kind","t_ns","tid","trial","name",
/// ...} per line). Returns the number of events written.
std::size_t flight_dump_jsonl(std::ostream& out);

/// flight_dump_jsonl to a file path (truncating). Returns events written;
/// throws darl::Error when the file cannot be opened.
std::size_t flight_dump_to_path(const std::string& path);

/// Where fatal-signal dumps go (copied into a fixed buffer so the signal
/// handler can read it without allocating). Empty disables fault dumps.
void set_flight_dump_path(const std::string& path);
std::string flight_dump_path();

/// Async-signal-safe dump of every ring to flight_dump_path(). Safe to
/// call from normal code too (the study trial-failure hook uses
/// flight_dump_to_path instead, which produces the same records with less
/// formatting restraint).
void flight_dump_on_fault();

/// Install a fatal-signal handler (SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT)
/// that calls flight_dump_on_fault(), then restores the default action and
/// re-raises. Idempotent.
void install_flight_signal_handler();

/// Convenience: enable flight recording and route log lines into the
/// rings (installs the darl::set_log_sink hook). Mirrors set_enabled()'s
/// role for metrics+tracing.
void enable_flight();
void disable_flight();

}  // namespace darl::obs
