// darl/obs/trace.hpp
//
// Span tracing: RAII DARL_SPAN("backend.collect") scopes record
// {name, start, end, thread, trial, args} into per-thread buffers that are
// flushed into one process-wide trace, exportable as Chrome trace-event
// JSON (open in Perfetto / chrome://tracing). Disabled spans cost one
// relaxed atomic-bool load; -DDARL_OBS_DISABLED compiles them out.
//
// Span names and arg keys must be string literals (or otherwise outlive
// the trace) — records store the pointers, not copies.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "darl/common/jsonl.hpp"
#include "darl/common/stopwatch.hpp"
#include "darl/obs/flight.hpp"   // flight_enabled(): spans also feed the recorder
#include "darl/obs/metrics.hpp"  // for the DARL_OBS_CONCAT helpers

namespace darl::obs {

/// Runtime gate for span recording (default off).
void set_tracing_enabled(bool enabled);
bool tracing_enabled();

/// Convenience: flip metrics and tracing together.
void set_enabled(bool enabled);

/// One finished span. Times are process_uptime_ns() values.
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  int tid = 0;            ///< darl::thread_ordinal() of the emitting thread
  std::int64_t trial = -1;  ///< current_trial() at emission (-1 = none)
  const char* k1 = nullptr;  ///< optional integer arg, e.g. "worker"
  std::int64_t v1 = 0;
  const char* k2 = nullptr;
  std::int64_t v2 = 0;
};

/// Snapshot every span recorded so far (flushed + still thread-local).
/// Safe to call while other threads keep emitting.
std::vector<SpanRecord> collect_spans();

/// Drop all recorded spans (flushed and thread-local).
void clear_spans();

/// Spans discarded because the process-wide trace hit its size cap.
std::size_t spans_dropped();

/// Chrome trace-event JSON ({"traceEvents":[...]} with "X" complete
/// events; ts/dur in microseconds, tid = thread ordinal, args carry
/// trial/worker ids). Loadable in Perfetto and chrome://tracing.
Json chrome_trace_json(const std::vector<SpanRecord>& spans);

namespace detail {
void finish_span(const char* name, std::uint64_t start_ns, const char* k1,
                 std::int64_t v1, const char* k2, std::int64_t v2);
}  // namespace detail

/// RAII span. Inactive (and nearly free) when neither tracing nor flight
/// recording is enabled at construction time; finish_span routes the
/// record to whichever consumers are on at destruction.
class SpanScope {
 public:
  explicit SpanScope(const char* name, const char* k1 = nullptr,
                     std::int64_t v1 = 0, const char* k2 = nullptr,
                     std::int64_t v2 = 0) {
    if (!tracing_enabled() && !flight_enabled()) return;
    name_ = name;
    k1_ = k1;
    v1_ = v1;
    k2_ = k2;
    v2_ = v2;
    start_ns_ = process_uptime_ns();
  }
  ~SpanScope() {
    if (name_ != nullptr) detail::finish_span(name_, start_ns_, k1_, v1_, k2_, v2_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  const char* k1_ = nullptr;
  std::int64_t v1_ = 0;
  const char* k2_ = nullptr;
  std::int64_t v2_ = 0;
};

/// Thread-local trial tag: spans emitted by this thread (and threads that
/// re-tag themselves with the parent's current_trial()) carry the trial id,
/// keying the exported trace by trial.
std::int64_t current_trial();

class TrialScope {
 public:
  explicit TrialScope(std::int64_t trial_id);
  ~TrialScope();
  TrialScope(const TrialScope&) = delete;
  TrialScope& operator=(const TrialScope&) = delete;

 private:
  std::int64_t previous_;
};

}  // namespace darl::obs

#ifndef DARL_OBS_DISABLED
#define DARL_SPAN(name) \
  ::darl::obs::SpanScope DARL_OBS_CONCAT(darl_obs_span_, __LINE__){name}
#define DARL_SPAN_V(name, key, value)                       \
  ::darl::obs::SpanScope DARL_OBS_CONCAT(darl_obs_span_,   \
                                         __LINE__){name, key, \
                                                   static_cast<std::int64_t>(value)}
#else
#define DARL_SPAN(name) static_cast<void>(0)
#define DARL_SPAN_V(name, key, value) static_cast<void>(0)
#endif
