// darl/obs/export.hpp
//
// Wire-exposed telemetry: renders RegistrySnapshot as Prometheus text
// exposition, and serves it (plus a JSON snapshot with time-series tails
// and a health probe) over a minimal blocking HTTP/1.0 listener.
//
// obs::Exporter speaks *just enough* HTTP for a scraper: it parses the
// request line of a GET, routes on the path, and answers with
// Content-Length + Connection: close. The accept loop hands each accepted
// connection to a small pool of handler threads, so one slow or hostile
// client can never head-of-line block a health probe: a drip-feeding
// connection (one byte per read, never a newline) occupies one handler for
// at most `connection_deadline_s` wall-clock seconds and at most
// `max_request_reads` recv() calls, then gets a 408 and is closed, while
// /healthz keeps answering from the other handlers. Connections beyond the
// pending backlog are shed at accept (closed unanswered) rather than
// queued without bound — the same shed-don't-queue posture the serving
// fleet takes under overload (DESIGN.md §14). The raw socket work
// (listen/accept/deadline-read, EINTR retry, SIGPIPE suppression) lives in
// darl/net/socket.hpp — this exporter was the repo's first socket code and
// now rides the shared transport primitives it seeded (DESIGN.md §17).
//
// Routes:
//   GET /metrics        -> text/plain; Prometheus text exposition
//   GET /snapshot.json  -> application/json; {"uptime_s","metrics","series"}
//   GET /healthz        -> text/plain; "ok\n"
// Anything else: 404. Non-GET: 405. Unparseable request line: 400.
// Request line never completed within the deadline / read budget: 408.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "darl/common/thread_safety.hpp"
#include "darl/net/socket.hpp"
#include "darl/obs/metrics.hpp"
#include "darl/obs/timeseries.hpp"

namespace darl::obs {

/// Render a snapshot in the Prometheus text exposition format. Metric
/// names have '.' mapped to '_'; label values are escaped per the format
/// rules; histograms emit cumulative `_bucket{le="..."}` lines (with a
/// final le="+Inf") plus `_sum` and `_count`.
std::string prometheus_text(const RegistrySnapshot& snap);

struct ExporterOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back with Exporter::port()).
  int port = 0;
  /// Registry to expose; nullptr means Registry::global().
  Registry* registry = nullptr;
  /// Optional sampler whose ring tails are embedded in /snapshot.json.
  TimeSeries* timeseries = nullptr;
  /// Concurrent connection handlers. A slow client occupies one handler;
  /// probes keep answering from the rest.
  std::size_t handler_threads = 4;
  /// Total wall-clock budget for reading one request line. A connection
  /// that has not produced a full line by then is answered 408 and closed.
  double connection_deadline_s = 2.0;
  /// Hard cap on recv() calls per connection: a drip-feeder sending one
  /// byte per read exhausts this long before the deadline.
  std::size_t max_request_reads = 64;
};

/// Blocking HTTP/1.0 metrics listener. start() binds + spawns the accept
/// thread; stop() (also the dtor) shuts the listening socket down and
/// joins. All failures surface as darl::Error from start(); per-connection
/// errors are answered on the wire and never take the listener down.
class Exporter {
 public:
  explicit Exporter(ExporterOptions options = {});
  ~Exporter();

  Exporter(const Exporter&) = delete;
  Exporter& operator=(const Exporter&) = delete;

  void start();
  void stop();
  bool running() const;

  /// Bound port (the real one when options.port was 0). 0 until start().
  int port() const { return port_; }

  /// Requests answered so far (any status).
  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Connections shed at accept because every handler was busy and the
  /// pending backlog was full (overload), or closed for blowing the
  /// request deadline / read budget (slow client).
  std::uint64_t connections_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void handler_loop();
  void handle_connection(int fd);
  std::string handle_request(const std::string& request_line) const;

  ExporterOptions options_;
  Registry* registry_;
  net::Listener listener_;
  int port_ = 0;
  std::thread thread_;
  std::vector<std::thread> handlers_;
  std::mutex conn_mutex_;
  std::condition_variable conn_cv_;
  /// Accepted fds awaiting a handler. Handlers pop under conn_mutex_ but
  /// always drop it before touching the socket — recv/send under this
  /// lock would head-of-line-block every other connection.
  std::deque<int> pending_conns_ DARL_GUARDED_BY(conn_mutex_);
  std::atomic<bool> stop_requested_{false};
  bool started_ = false;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// Minimal HTTP GET client for the exporter's loopback endpoints (used by
/// darl_top, the live tests, and check.sh's smoke stage via darl_top).
struct HttpResponse {
  int status = 0;
  std::string body;
};

/// Connect to 127.0.0.1:port, issue `GET path HTTP/1.0`, and return the
/// parsed status + body. Throws darl::Error on connect/IO failure.
HttpResponse http_get(int port, const std::string& path);

}  // namespace darl::obs
