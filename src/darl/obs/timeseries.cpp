#include "darl/obs/timeseries.hpp"

#include <algorithm>
#include <chrono>

#include "darl/common/error.hpp"
#include "darl/common/stopwatch.hpp"
#include "darl/obs/percentile.hpp"

namespace darl::obs {

template <typename Point>
void TimeSeries::Ring<Point>::push(Point p, std::size_t capacity) {
  if (slots.size() < capacity) {
    slots.push_back(std::move(p));
    return;
  }
  slots[next] = std::move(p);
  next = (next + 1) % slots.size();
}

template <typename Point>
std::vector<Point> TimeSeries::Ring<Point>::ordered() const {
  std::vector<Point> out;
  out.reserve(slots.size());
  // Before the ring wraps, `next` stays 0 and slots are already oldest
  // first; afterwards `next` marks the oldest slot.
  for (std::size_t i = 0; i < slots.size(); ++i) {
    out.push_back(slots[(next + i) % slots.size()]);
  }
  return out;
}

TimeSeries::TimeSeries(TimeSeriesOptions options)
    : options_(options),
      registry_(options.registry != nullptr ? options.registry
                                            : &Registry::global()) {
  DARL_CHECK(options_.capacity >= 2,
             "TimeSeries capacity must be >= 2 (got " << options_.capacity
                                                      << ")");
  DARL_CHECK(options_.period_ms > 0,
             "TimeSeries period_ms must be > 0 (got " << options_.period_ms
                                                      << ")");
}

TimeSeries::~TimeSeries() { stop(); }

void TimeSeries::start() {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (thread_running_) return;
  stop_requested_ = false;
  thread_ = std::thread([this] { run_loop(); });
  thread_running_ = true;
}

void TimeSeries::stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    if (!thread_running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(thread_mutex_);
  thread_running_ = false;
}

bool TimeSeries::running() const {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  return thread_running_;
}

void TimeSeries::run_loop() {
  std::unique_lock<std::mutex> lock(thread_mutex_);
  while (!stop_requested_) {
    lock.unlock();
    sample_once();
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(options_.period_ms),
                 [this] { return stop_requested_; });
  }
}

void TimeSeries::sample_once() {
  const RegistrySnapshot snap = registry_->snapshot();
  const std::uint64_t now_ns = process_uptime_ns();
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, v] : snap.counters) {
    scalars_[key].push(SeriesPoint{now_ns, static_cast<double>(v)},
                       options_.capacity);
  }
  for (const auto& [key, v] : snap.gauges) {
    scalars_[key].push(SeriesPoint{now_ns, v}, options_.capacity);
  }
  for (const auto& [key, h] : snap.histograms) {
    HistogramPoint p;
    p.t_ns = now_ns;
    p.counts = h.counts;
    p.count = h.count;
    p.sum = h.sum;
    histograms_[key].push(std::move(p), options_.capacity);
  }
  ++samples_;
}

std::uint64_t TimeSeries::samples_taken() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

std::vector<SeriesPoint> TimeSeries::scalar_series(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = scalars_.find(key);
  if (it == scalars_.end()) return {};
  return it->second.ordered();
}

namespace {

std::optional<double> windowed_rate(double first_v, std::uint64_t first_ns,
                                    double last_v, std::uint64_t last_ns) {
  if (last_ns <= first_ns) return std::nullopt;
  const double dt_s = static_cast<double>(last_ns - first_ns) * 1e-9;
  return (last_v - first_v) / dt_s;
}

}  // namespace

std::optional<double> TimeSeries::rate_per_s(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = scalars_.find(key); it != scalars_.end()) {
    const auto points = it->second.ordered();
    if (points.size() < 2) return std::nullopt;
    return windowed_rate(points.front().value, points.front().t_ns,
                         points.back().value, points.back().t_ns);
  }
  if (const auto it = histograms_.find(key); it != histograms_.end()) {
    const auto points = it->second.ordered();
    if (points.size() < 2) return std::nullopt;
    return windowed_rate(static_cast<double>(points.front().count),
                         points.front().t_ns,
                         static_cast<double>(points.back().count),
                         points.back().t_ns);
  }
  return std::nullopt;
}

std::optional<double> TimeSeries::window_percentile(const std::string& key,
                                                    double p) const {
  std::vector<std::uint64_t> first_counts, last_counts;
  std::vector<double> bounds;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = histograms_.find(key);
    if (it == histograms_.end()) return std::nullopt;
    const auto points = it->second.ordered();
    if (points.size() < 2) return std::nullopt;
    first_counts = points.front().counts;
    last_counts = points.back().counts;
  }
  // Bounds come from the live registry snapshot shape: counts vectors are
  // bounds.size() + 1 long, and histogram bounds are fixed at registration,
  // so any retained point pairs up with the current bounds.
  const RegistrySnapshot snap = registry_->snapshot();
  const auto hist = snap.histograms.find(key);
  if (hist == snap.histograms.end()) return std::nullopt;
  bounds = hist->second.bounds;
  if (first_counts.size() != last_counts.size() ||
      last_counts.size() != bounds.size() + 1) {
    return std::nullopt;
  }
  std::vector<std::uint64_t> window(last_counts.size(), 0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < window.size(); ++i) {
    window[i] = last_counts[i] - std::min(first_counts[i], last_counts[i]);
    total += window[i];
  }
  if (total == 0) return std::nullopt;
  return histogram_percentile(bounds, window, p);
}

Json TimeSeries::to_json(std::size_t max_points) const {
  // Copy the rings under the lock, derive/format outside it (the same
  // copy-then-format discipline as Registry::snapshot()).
  std::map<std::string, std::vector<SeriesPoint>> scalars;
  std::map<std::string, std::vector<HistogramPoint>> hists;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, ring] : scalars_) scalars[key] = ring.ordered();
    for (const auto& [key, ring] : histograms_) hists[key] = ring.ordered();
  }

  Json root = Json::object();
  for (const auto& [key, points] : scalars) {
    Json node = Json::object();
    Json arr = Json::array();
    const std::size_t start =
        points.size() > max_points ? points.size() - max_points : 0;
    for (std::size_t i = start; i < points.size(); ++i) {
      Json pt = Json::array();
      pt.push_back(Json::number(static_cast<double>(points[i].t_ns) * 1e-9));
      pt.push_back(Json::number(points[i].value));
      arr.push_back(std::move(pt));
    }
    node.set("points", std::move(arr));
    if (points.size() >= 2) {
      const auto rate =
          windowed_rate(points.front().value, points.front().t_ns,
                        points.back().value, points.back().t_ns);
      if (rate.has_value()) node.set("rate_per_s", Json::number(*rate));
    }
    root.set(key, std::move(node));
  }
  for (const auto& [key, points] : hists) {
    Json node = Json::object();
    if (points.size() >= 2) {
      const auto rate =
          windowed_rate(static_cast<double>(points.front().count),
                        points.front().t_ns,
                        static_cast<double>(points.back().count),
                        points.back().t_ns);
      if (rate.has_value()) node.set("rate_per_s", Json::number(*rate));
      Json window = Json::object();
      window.set("count",
                 Json::integer(static_cast<std::int64_t>(
                     points.back().count - std::min(points.front().count,
                                                    points.back().count))));
      const auto p50 = window_percentile(key, 50.0);
      const auto p99 = window_percentile(key, 99.0);
      if (p50.has_value()) window.set("p50", Json::number(*p50));
      if (p99.has_value()) window.set("p99", Json::number(*p99));
      node.set("window", std::move(window));
    }
    root.set(key, std::move(node));
  }
  return root;
}

}  // namespace darl::obs
