// darl/obs/percentile.hpp
//
// Shared percentile math for telemetry consumers. The sample-percentile
// function used to live in darl/common/stats (and before that was
// re-derived ad hoc by the serve CLI and bench); it now has one home here
// so darl_serve's stats table, bench_serve, darl_top and the report
// renderers all agree on the interpolation rule. histogram_percentile adds
// the bucketed estimate needed when only a fixed-bucket histogram (the
// exporter's native shape) is available.
//
// Header-only so tools and benches can use it without linking darl_obs.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "darl/common/error.hpp"

namespace darl::obs {

/// Linear-interpolation percentile over raw samples, p in [0, 100].
/// Requires non-empty input. Matches NumPy's default ("linear") rule:
/// rank = p/100 * (n-1), interpolated between the floor/ceil order stats.
inline double percentile(std::vector<double> xs, double p) {
  DARL_CHECK(!xs.empty(), "percentile of empty vector");
  DARL_CHECK(p >= 0.0 && p <= 100.0, "percentile out of [0,100]: " << p);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

/// Percentile estimate from a fixed-bucket histogram: `bounds` are the
/// upper bucket bounds (strictly increasing) and `counts` the per-bucket
/// tallies with one trailing overflow bucket (counts.size() ==
/// bounds.size() + 1), exactly the obs::Histogram layout. The estimate
/// interpolates linearly within the bucket containing the target rank
/// (Prometheus histogram_quantile semantics); ranks landing in the
/// overflow bucket clamp to the largest finite bound. Returns 0 when the
/// histogram is empty.
inline double histogram_percentile(const std::vector<double>& bounds,
                                   const std::vector<std::uint64_t>& counts,
                                   double p) {
  DARL_CHECK(!bounds.empty(), "histogram_percentile needs at least one bound");
  DARL_CHECK(counts.size() == bounds.size() + 1,
             "histogram_percentile: counts must be bounds.size() + 1 (got "
                 << counts.size() << " for " << bounds.size() << " bounds)");
  DARL_CHECK(p >= 0.0 && p <= 100.0, "percentile out of [0,100]: " << p);
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t previous = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i == counts.size() - 1) return bounds.back();  // overflow bucket
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi = bounds[i];
    if (counts[i] == 0) return hi;
    const double frac =
        (rank - static_cast<double>(previous)) / static_cast<double>(counts[i]);
    return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
  }
  return bounds.back();
}

}  // namespace darl::obs
