// darl/obs/metrics.hpp
//
// Process-wide metrics registry: named, optionally *labeled* counters,
// gauges and fixed-bucket histograms. Registration (name -> instrument
// lookup) takes a mutex once per call site; the hot path is a relaxed
// atomic add on a per-thread-sharded, cache-line-owned slot, so
// instruments may be hammered concurrently from every worker thread
// without bouncing a shared line. Shards are aggregated at snapshot time.
//
// Snapshots serialize through darl::Json (and, via obs/export.hpp, the
// Prometheus text exposition format). The whole layer is zero-cost when
// disabled: a relaxed atomic-bool check at runtime (set_metrics_enabled),
// or compiled out entirely with -DDARL_OBS_DISABLED.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "darl/common/jsonl.hpp"
#include "darl/common/log.hpp"  // thread_ordinal() for counter sharding
#include "darl/common/thread_safety.hpp"

namespace darl::obs {

/// Runtime gate for the metrics registry (default off, so benches measure
/// the uninstrumented hot paths). Instruments still accept writes while
/// disabled — the gate lives in the DARL_COUNTER_* / DARL_GAUGE_* macros
/// and in callers using the registry directly.
void set_metrics_enabled(bool enabled);
bool metrics_enabled();

/// Instrument labels: key/value pairs, canonicalized (sorted by key) at
/// registration. Keys obey the same charset as metric names; values are
/// free-form and escaped on export.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Metric and label-key names must match [a-z0-9_.]+ (enforced at
/// registration, and statically by darl_lint's `metric-name` rule).
bool valid_metric_name(const std::string& name);

/// Escape a label value for the flattened instrument key and for the
/// Prometheus text exposition (backslash, double quote, newline).
std::string escape_label_value(const std::string& v);

/// Canonical flattened identity of one instrument: `name` when unlabeled,
/// otherwise `name{k1="v1",k2="v2"}` with keys sorted and values escaped.
/// Snapshot maps are keyed by this string, so unlabeled instruments keep
/// their historical plain-name keys.
std::string instrument_key(const std::string& name, const Labels& labels);

/// Monotonic event counter, sharded across kShards cache-line-owned slots
/// indexed by the caller's dense thread ordinal. The common case (fewer
/// live incrementing threads than shards) is a relaxed RMW on a line no
/// other thread touches; ordinal collisions fall back to sharing a slot,
/// which stays exact because the slot op is still an atomic fetch_add.
/// value() sums the shards (aggregation happens at snapshot time, not on
/// the hot path).
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t n = 1) {
    shards_[shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void reset() {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  static std::size_t shard_index() {
    // The masked ordinal never changes for a thread, so cache it in an
    // inline thread_local: the steady-state cost is one TLS load instead
    // of an out-of-line thread_ordinal() call per increment.
    thread_local const std::size_t cached =
        static_cast<std::size_t>(darl::thread_ordinal()) & (kShards - 1);
    return cached;
  }
  std::array<Shard, kShards> shards_;
};

/// Last-value / accumulating double instrument.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations v with
/// bounds[i-1] < v <= bounds[i]; one implicit overflow bucket counts
/// v > bounds.back(). Bounds are fixed at registration (strictly
/// increasing, non-empty).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, size bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of one histogram.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< size bounds.size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Structured identity of one snapshot entry (base name + labels), keyed
/// by the same flattened instrument_key as the value maps. Consumers that
/// need the parts (the Prometheus renderer) look here instead of parsing
/// the flattened key back apart.
struct InstrumentId {
  std::string name;
  Labels labels;
};

/// Point-in-time copy of the whole registry.
struct RegistrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, InstrumentId> ids;

  /// One Json object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  Json to_json() const;

  /// One JSONL record per instrument:
  /// {"kind":"counter","name":...,"value":...} etc. Labeled instruments
  /// carry the flattened key as "name" plus a "labels" object.
  void write_jsonl(JsonlWriter& out) const;
};

/// Named-instrument registry. Lookup registers on first use and returns a
/// reference that stays valid for the registry's lifetime (reset() zeroes
/// values but never invalidates references — call sites may cache them).
class Registry {
 public:
  /// The process-wide registry used by the DARL_COUNTER_* macros.
  static Registry& global();

  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// First registration fixes the bounds; a later call with different
  /// bounds throws darl::InvalidArgument.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const Labels& labels = {});

  /// Copy-then-read: the registration mutex is held only while instrument
  /// pointers are gathered (entries are never erased, so the pointers stay
  /// valid); the values are read — and any downstream formatting happens —
  /// without the lock, so a scrape never stalls instrument lookup on a
  /// serving hot path.
  RegistrySnapshot snapshot() const;

  /// Zero every instrument, keeping registrations (and references) alive.
  void reset();

 private:
  template <typename T>
  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<T> instrument;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry<Counter>> counters_ DARL_GUARDED_BY(mutex_);
  std::map<std::string, Entry<Gauge>> gauges_ DARL_GUARDED_BY(mutex_);
  std::map<std::string, Entry<Histogram>> histograms_
      DARL_GUARDED_BY(mutex_);
};

}  // namespace darl::obs

#define DARL_OBS_CONCAT_INNER(a, b) a##b
#define DARL_OBS_CONCAT(a, b) DARL_OBS_CONCAT_INNER(a, b)

// Hot-path macros: one relaxed atomic-bool load when disabled; the
// instrument reference is resolved once per call site (function-local
// static) when enabled. `name` must outlive the first call (use literals).
#ifndef DARL_OBS_DISABLED
#define DARL_COUNTER_ADD(name, n)                                             \
  do {                                                                        \
    if (::darl::obs::metrics_enabled()) {                                     \
      static ::darl::obs::Counter& DARL_OBS_CONCAT(darl_obs_ctr_, __LINE__) = \
          ::darl::obs::Registry::global().counter(name);                      \
      DARL_OBS_CONCAT(darl_obs_ctr_, __LINE__)                                \
          .add(static_cast<std::uint64_t>(n));                                \
    }                                                                         \
  } while (0)
#define DARL_GAUGE_ADD(name, v)                                               \
  do {                                                                        \
    if (::darl::obs::metrics_enabled()) {                                     \
      static ::darl::obs::Gauge& DARL_OBS_CONCAT(darl_obs_gge_, __LINE__) =   \
          ::darl::obs::Registry::global().gauge(name);                        \
      DARL_OBS_CONCAT(darl_obs_gge_, __LINE__)                                \
          .add(static_cast<double>(v));                                       \
    }                                                                         \
  } while (0)
#define DARL_GAUGE_SET(name, v)                                               \
  do {                                                                        \
    if (::darl::obs::metrics_enabled()) {                                     \
      static ::darl::obs::Gauge& DARL_OBS_CONCAT(darl_obs_gge_, __LINE__) =   \
          ::darl::obs::Registry::global().gauge(name);                        \
      DARL_OBS_CONCAT(darl_obs_gge_, __LINE__)                                \
          .set(static_cast<double>(v));                                       \
    }                                                                         \
  } while (0)
#else
#define DARL_COUNTER_ADD(name, n) static_cast<void>(0)
#define DARL_GAUGE_ADD(name, v) static_cast<void>(0)
#define DARL_GAUGE_SET(name, v) static_cast<void>(0)
#endif
