// darl/obs/metrics.hpp
//
// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms. Registration (name -> instrument lookup) takes a mutex once
// per call site; the hot path is a single relaxed atomic operation, so
// instruments may be hammered concurrently from every worker thread.
// Snapshots serialize through darl::Json, and the whole layer is
// zero-cost when disabled: a relaxed atomic-bool check at runtime
// (set_metrics_enabled), or compiled out entirely with -DDARL_OBS_DISABLED.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "darl/common/jsonl.hpp"

namespace darl::obs {

/// Runtime gate for the metrics registry (default off, so benches measure
/// the uninstrumented hot paths). Instruments still accept writes while
/// disabled — the gate lives in the DARL_COUNTER_* / DARL_GAUGE_* macros
/// and in callers using the registry directly.
void set_metrics_enabled(bool enabled);
bool metrics_enabled();

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value / accumulating double instrument.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations v with
/// bounds[i-1] < v <= bounds[i]; one implicit overflow bucket counts
/// v > bounds.back(). Bounds are fixed at registration (strictly
/// increasing, non-empty).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, size bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of one histogram.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< size bounds.size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time copy of the whole registry.
struct RegistrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// One Json object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  Json to_json() const;

  /// One JSONL record per instrument:
  /// {"kind":"counter","name":...,"value":...} etc.
  void write_jsonl(JsonlWriter& out) const;
};

/// Named-instrument registry. Lookup registers on first use and returns a
/// reference that stays valid for the registry's lifetime (reset() zeroes
/// values but never invalidates references — call sites may cache them).
class Registry {
 public:
  /// The process-wide registry used by the DARL_COUNTER_* macros.
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First registration fixes the bounds; a later call with different
  /// bounds throws darl::InvalidArgument.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  RegistrySnapshot snapshot() const;

  /// Zero every instrument, keeping registrations (and references) alive.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace darl::obs

#define DARL_OBS_CONCAT_INNER(a, b) a##b
#define DARL_OBS_CONCAT(a, b) DARL_OBS_CONCAT_INNER(a, b)

// Hot-path macros: one relaxed atomic-bool load when disabled; the
// instrument reference is resolved once per call site (function-local
// static) when enabled. `name` must outlive the first call (use literals).
#ifndef DARL_OBS_DISABLED
#define DARL_COUNTER_ADD(name, n)                                             \
  do {                                                                        \
    if (::darl::obs::metrics_enabled()) {                                     \
      static ::darl::obs::Counter& DARL_OBS_CONCAT(darl_obs_ctr_, __LINE__) = \
          ::darl::obs::Registry::global().counter(name);                      \
      DARL_OBS_CONCAT(darl_obs_ctr_, __LINE__)                                \
          .add(static_cast<std::uint64_t>(n));                                \
    }                                                                         \
  } while (0)
#define DARL_GAUGE_ADD(name, v)                                               \
  do {                                                                        \
    if (::darl::obs::metrics_enabled()) {                                     \
      static ::darl::obs::Gauge& DARL_OBS_CONCAT(darl_obs_gge_, __LINE__) =   \
          ::darl::obs::Registry::global().gauge(name);                        \
      DARL_OBS_CONCAT(darl_obs_gge_, __LINE__)                                \
          .add(static_cast<double>(v));                                       \
    }                                                                         \
  } while (0)
#define DARL_GAUGE_SET(name, v)                                               \
  do {                                                                        \
    if (::darl::obs::metrics_enabled()) {                                     \
      static ::darl::obs::Gauge& DARL_OBS_CONCAT(darl_obs_gge_, __LINE__) =   \
          ::darl::obs::Registry::global().gauge(name);                        \
      DARL_OBS_CONCAT(darl_obs_gge_, __LINE__)                                \
          .set(static_cast<double>(v));                                       \
    }                                                                         \
  } while (0)
#else
#define DARL_COUNTER_ADD(name, n) static_cast<void>(0)
#define DARL_GAUGE_ADD(name, v) static_cast<void>(0)
#define DARL_GAUGE_SET(name, v) static_cast<void>(0)
#endif
