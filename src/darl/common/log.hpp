// darl/common/log.hpp
//
// Leveled, thread-safe logging to stderr. Study runs log trial lifecycle
// events; tests set the level to Off to keep output clean. Lines carry a
// monotonic timestamp (seconds since process start) and a dense thread
// ordinal so they can be correlated with darl/obs trace spans.

#pragma once

#include <optional>
#include <sstream>
#include <string>

namespace darl {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Set the global log threshold (messages below it are dropped).
void set_log_level(LogLevel level);

/// Current global log threshold.
LogLevel log_level();

/// True when a message at `level` would be emitted.
inline bool log_enabled(LogLevel level) {
  return level >= log_level() && level != LogLevel::Off;
}

/// Emit one log line (thread-safe; a single OS write per line).
void log_message(LogLevel level, const std::string& message);

/// Optional secondary sink: receives every line that passes the level
/// filter, before it is written to stderr and outside the stderr lock. A
/// plain function pointer (not std::function) so higher layers — the obs
/// flight recorder — can hook in without this layer depending on them.
/// nullptr uninstalls.
using LogSink = void (*)(LogLevel level, const std::string& message);
void set_log_sink(LogSink sink);

/// Small dense per-thread ordinal (0, 1, 2, ... in first-use order), stable
/// for the thread's lifetime. Printed in log lines and recorded in obs
/// trace spans, so the two can be matched up.
int thread_ordinal();

namespace detail {

class LogLine {
 public:
  /// The stream (and therefore every formatting cost) only materializes
  /// when the level passes the threshold; dropped lines pay one check.
  explicit LogLine(LogLevel level) : level_(level) {
    if (log_enabled(level)) oss_.emplace();
  }
  ~LogLine() {
    if (oss_.has_value()) log_message(level_, oss_->str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (oss_.has_value()) *oss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::optional<std::ostringstream> oss_;
};

}  // namespace detail
}  // namespace darl

#define DARL_LOG_DEBUG ::darl::detail::LogLine(::darl::LogLevel::Debug)
#define DARL_LOG_INFO ::darl::detail::LogLine(::darl::LogLevel::Info)
#define DARL_LOG_WARN ::darl::detail::LogLine(::darl::LogLevel::Warn)
#define DARL_LOG_ERROR ::darl::detail::LogLine(::darl::LogLevel::Error)
