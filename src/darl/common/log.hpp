// darl/common/log.hpp
//
// Leveled, thread-safe logging to stderr. Study runs log trial lifecycle
// events; tests set the level to Off to keep output clean.

#pragma once

#include <sstream>
#include <string>

namespace darl {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Set the global log threshold (messages below it are dropped).
void set_log_level(LogLevel level);

/// Current global log threshold.
LogLevel log_level();

/// Emit one log line (thread-safe; a single OS write per line).
void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, oss_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    oss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream oss_;
};

}  // namespace detail
}  // namespace darl

#define DARL_LOG_DEBUG ::darl::detail::LogLine(::darl::LogLevel::Debug)
#define DARL_LOG_INFO ::darl::detail::LogLine(::darl::LogLevel::Info)
#define DARL_LOG_WARN ::darl::detail::LogLine(::darl::LogLevel::Warn)
#define DARL_LOG_ERROR ::darl::detail::LogLine(::darl::LogLevel::Error)
