#include "darl/common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "darl/common/error.hpp"

namespace darl {
namespace {

std::string format_tick(double v) {
  char buf[32];
  if (std::abs(v) >= 1000.0 || (std::abs(v) < 0.01 && v != 0.0)) {
    std::snprintf(buf, sizeof(buf), "%.3g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

}  // namespace

std::string render_scatter(const std::vector<PlotPoint>& points,
                           const PlotOptions& options) {
  DARL_CHECK(options.width >= 16 && options.height >= 8,
             "plot area too small: " << options.width << "x" << options.height);

  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin, ymin = xmin, ymax = -xmin;
  for (const auto& p : points) {
    xmin = std::min(xmin, p.x);
    xmax = std::max(xmax, p.x);
    ymin = std::min(ymin, p.y);
    ymax = std::max(ymax, p.y);
  }
  if (points.empty()) {
    xmin = ymin = 0.0;
    xmax = ymax = 1.0;
  }
  // Expand degenerate and tight ranges by a 5% margin so markers do not sit
  // on the frame.
  auto expand = [](double& lo, double& hi) {
    double span = hi - lo;
    if (span <= 0.0) span = (std::abs(hi) > 1e-12) ? std::abs(hi) : 1.0;
    lo -= 0.05 * span;
    hi += 0.05 * span;
  };
  expand(xmin, xmax);
  expand(ymin, ymax);

  const int W = options.width;
  const int H = options.height;
  std::vector<std::string> grid(static_cast<std::size_t>(H),
                                std::string(static_cast<std::size_t>(W), ' '));
  // Track which cells hold a highlight so plain points never overwrite them.
  std::vector<std::vector<bool>> is_highlight(
      static_cast<std::size_t>(H), std::vector<bool>(static_cast<std::size_t>(W), false));

  auto to_col = [&](double x) {
    int c = static_cast<int>(std::lround((x - xmin) / (xmax - xmin) * (W - 1)));
    return std::clamp(c, 0, W - 1);
  };
  auto to_row = [&](double y) {
    int r = static_cast<int>(std::lround((y - ymin) / (ymax - ymin) * (H - 1)));
    return std::clamp(H - 1 - r, 0, H - 1);  // row 0 is the top
  };

  // Draw plain points first, then highlights, then labels.
  for (const auto& p : points) {
    if (p.highlight) continue;
    const auto r = static_cast<std::size_t>(to_row(p.y));
    const auto c = static_cast<std::size_t>(to_col(p.x));
    grid[r][c] = '*';
  }
  for (const auto& p : points) {
    if (!p.highlight) continue;
    const auto r = static_cast<std::size_t>(to_row(p.y));
    const auto c = static_cast<std::size_t>(to_col(p.x));
    grid[r][c] = '#';
    is_highlight[r][c] = true;
  }
  for (const auto& p : points) {
    if (p.label.empty()) continue;
    const auto r = static_cast<std::size_t>(to_row(p.y));
    int c = to_col(p.x) + 1;
    for (char ch : p.label) {
      if (c >= W) break;
      const auto uc = static_cast<std::size_t>(c);
      if (grid[r][uc] == ' ') grid[r][uc] = ch;
      ++c;
    }
  }

  std::ostringstream out;
  if (!options.title.empty()) out << "  " << options.title << '\n';
  if (!options.y_label.empty()) out << "  " << options.y_label << '\n';

  const std::string ytop = format_tick(ymax);
  const std::string ybot = format_tick(ymin);
  const std::size_t gutter = std::max(ytop.size(), ybot.size()) + 1;

  for (int r = 0; r < H; ++r) {
    std::string margin(gutter, ' ');
    if (r == 0) margin = ytop + std::string(gutter - ytop.size(), ' ');
    if (r == H - 1) margin = ybot + std::string(gutter - ybot.size(), ' ');
    out << margin << '|' << grid[static_cast<std::size_t>(r)] << '\n';
  }
  out << std::string(gutter, ' ') << '+' << std::string(static_cast<std::size_t>(W), '-')
      << '\n';
  const std::string xlo = format_tick(xmin);
  const std::string xhi = format_tick(xmax);
  std::string axis_line(gutter + 1, ' ');
  axis_line += xlo;
  const std::size_t total = gutter + 1 + static_cast<std::size_t>(W);
  if (axis_line.size() + xhi.size() < total) {
    axis_line += std::string(total - axis_line.size() - xhi.size(), ' ');
    axis_line += xhi;
  }
  out << axis_line << '\n';
  if (!options.x_label.empty()) {
    const std::size_t pad = total > options.x_label.size()
                                ? (total - options.x_label.size()) / 2
                                : 0;
    out << std::string(pad, ' ') << options.x_label << '\n';
  }
  out << "  legend: # = Pareto-optimal   * = dominated\n";
  return out.str();
}

}  // namespace darl
