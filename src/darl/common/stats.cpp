#include "darl/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "darl/common/error.hpp"

namespace darl {

void RunningStats::push(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel variance combination.
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nab = na + nb;
  mean_ += delta * nb / nab;
  m2_ += other.m2_ + delta * delta * na * nb / nab;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  RunningStats s;
  for (double x : xs) s.push(x);
  return s.mean();
}

double stddev(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.push(x);
  return s.stddev();
}

double median(std::vector<double> xs) {
  DARL_CHECK(!xs.empty(), "median of empty vector");
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid), xs.end());
  const double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  const double lo = *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

std::vector<double> ema(const std::vector<double>& xs, double alpha) {
  DARL_CHECK(alpha > 0.0 && alpha <= 1.0, "ema alpha out of (0,1]: " << alpha);
  std::vector<double> out;
  out.reserve(xs.size());
  double acc = 0.0;
  bool first = true;
  for (double x : xs) {
    acc = first ? x : alpha * x + (1.0 - alpha) * acc;
    first = false;
    out.push_back(acc);
  }
  return out;
}

}  // namespace darl
