#include "darl/common/log.hpp"

#include "darl/common/thread_safety.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "darl/common/stopwatch.hpp"

namespace darl {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::atomic<LogSink> g_sink{nullptr};
/// Serializes the stderr write only — never held around the sink call,
/// and log_message below declares it DARL_EXCLUDES so a custom sink that
/// logs recursively deadlocks in review, not production.
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

int thread_ordinal() {
  static std::atomic<int> next{0};
  thread_local const int ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

void set_log_sink(LogSink sink) {
  g_sink.store(sink, std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& message)
    DARL_EXCLUDES(g_mutex) {
  if (!log_enabled(level)) return;
  if (const LogSink sink = g_sink.load(std::memory_order_relaxed);
      sink != nullptr) {
    sink(level, message);
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[darl %s %10.3fs t%02d] %s\n", level_name(level),
               process_uptime_seconds(), thread_ordinal(), message.c_str());
}

}  // namespace darl
