#include "darl/common/jsonl.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "darl/common/error.hpp"

namespace darl {

Json Json::boolean(bool b) {
  Json j;
  j.value_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.value_ = v;
  return j;
}

Json Json::integer(std::int64_t v) {
  Json j;
  j.value_ = static_cast<double>(v);
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.value_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.value_ = Array{};
  return j;
}

Json Json::object() {
  Json j;
  j.value_ = Object{};
  return j;
}

void Json::push_back(Json v) {
  auto* arr = std::get_if<Array>(&value_);
  DARL_CHECK(arr != nullptr, "push_back on non-array Json node");
  arr->push_back(std::move(v));
}

void Json::set(const std::string& key, Json v) {
  auto* obj = std::get_if<Object>(&value_);
  DARL_CHECK(obj != nullptr, "set on non-object Json node");
  (*obj)[key] = std::move(v);
}

bool Json::is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
bool Json::is_bool() const { return std::holds_alternative<bool>(value_); }
bool Json::is_number() const { return std::holds_alternative<double>(value_); }
bool Json::is_string() const { return std::holds_alternative<std::string>(value_); }
bool Json::is_array() const { return std::holds_alternative<Array>(value_); }
bool Json::is_object() const { return std::holds_alternative<Object>(value_); }

bool Json::as_bool() const {
  DARL_CHECK(is_bool(), "Json node is not a bool");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  DARL_CHECK(is_number(), "Json node is not a number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  DARL_CHECK(is_string(), "Json node is not a string");
  return std::get<std::string>(value_);
}

const std::vector<Json>& Json::as_array() const {
  DARL_CHECK(is_array(), "Json node is not an array");
  return std::get<Array>(value_);
}

const std::map<std::string, Json>& Json::as_object() const {
  DARL_CHECK(is_object(), "Json node is not an object");
  return std::get<Object>(value_);
}

namespace {

/// Recursive-descent JSON parser over a byte range. Kept deliberately
/// small: the only in-repo producer is Json::dump() (exporter snapshots,
/// study artifacts), so exotic inputs just need a clean error, not
/// recovery.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    DARL_CHECK(pos_ == text_.size(),
               "JSON: trailing content at byte " << pos_);
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    throw InvalidArgument("JSON: " + std::string(what) + " at byte " +
                          std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    DARL_CHECK(depth_ < 64, "JSON: nesting deeper than 64");
    switch (peek()) {
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json::null();
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json::boolean(false);
      case '"': return Json::string(parse_string());
      case '[': return parse_array();
      case '{': return parse_object();
      default: return parse_number();
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("malformed number");
    }
    return Json::number(v);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("unknown escape");
      }
    }
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code += static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code += static_cast<unsigned>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        code += static_cast<unsigned>(c - 'A') + 10;
      } else {
        fail("bad \\u escape digit");
      }
    }
    // Encode the BMP code point as UTF-8; surrogates (never produced by
    // dump(), which only \u-escapes control bytes) map to U+FFFD.
    std::string out;
    if (code >= 0xD800 && code <= 0xDFFF) code = 0xFFFD;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  Json parse_array() {
    expect('[');
    ++depth_;
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    --depth_;
    return arr;
  }

  Json parse_object() {
    expect('{');
    ++depth_;
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    --depth_;
    return obj;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (is_number()) {
    const double v = std::get<double>(value_);
    if (!std::isfinite(v)) {
      out += "null";
    } else if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
               std::abs(v) < 1e15) {
      out += std::to_string(static_cast<std::int64_t>(v));
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.12g", v);
      out += buf;
    }
  } else if (is_string()) {
    out += '"';
    out += json_escape(std::get<std::string>(value_));
    out += '"';
  } else if (is_array()) {
    out += '[';
    const auto& arr = std::get<Array>(value_);
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i) out += ',';
      arr[i].dump_to(out);
    }
    out += ']';
  } else {
    out += '{';
    const auto& obj = std::get<Object>(value_);
    bool first = true;
    for (const auto& [k, v] : obj) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += json_escape(k);
      out += "\":";
      v.dump_to(out);
    }
    out += '}';
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

void JsonlWriter::write(const Json& record) {
  out_ << record.dump() << '\n';
  ++records_;
}

}  // namespace darl
