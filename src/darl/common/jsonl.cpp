#include "darl/common/jsonl.hpp"

#include <cmath>
#include <cstdio>

#include "darl/common/error.hpp"

namespace darl {

Json Json::boolean(bool b) {
  Json j;
  j.value_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.value_ = v;
  return j;
}

Json Json::integer(std::int64_t v) {
  Json j;
  j.value_ = static_cast<double>(v);
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.value_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.value_ = Array{};
  return j;
}

Json Json::object() {
  Json j;
  j.value_ = Object{};
  return j;
}

void Json::push_back(Json v) {
  auto* arr = std::get_if<Array>(&value_);
  DARL_CHECK(arr != nullptr, "push_back on non-array Json node");
  arr->push_back(std::move(v));
}

void Json::set(const std::string& key, Json v) {
  auto* obj = std::get_if<Object>(&value_);
  DARL_CHECK(obj != nullptr, "set on non-object Json node");
  (*obj)[key] = std::move(v);
}

bool Json::is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
bool Json::is_bool() const { return std::holds_alternative<bool>(value_); }
bool Json::is_number() const { return std::holds_alternative<double>(value_); }
bool Json::is_string() const { return std::holds_alternative<std::string>(value_); }
bool Json::is_array() const { return std::holds_alternative<Array>(value_); }
bool Json::is_object() const { return std::holds_alternative<Object>(value_); }

bool Json::as_bool() const {
  DARL_CHECK(is_bool(), "Json node is not a bool");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  DARL_CHECK(is_number(), "Json node is not a number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  DARL_CHECK(is_string(), "Json node is not a string");
  return std::get<std::string>(value_);
}

const std::vector<Json>& Json::as_array() const {
  DARL_CHECK(is_array(), "Json node is not an array");
  return std::get<Array>(value_);
}

const std::map<std::string, Json>& Json::as_object() const {
  DARL_CHECK(is_object(), "Json node is not an object");
  return std::get<Object>(value_);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (is_number()) {
    const double v = std::get<double>(value_);
    if (!std::isfinite(v)) {
      out += "null";
    } else if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
               std::abs(v) < 1e15) {
      out += std::to_string(static_cast<std::int64_t>(v));
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.12g", v);
      out += buf;
    }
  } else if (is_string()) {
    out += '"';
    out += json_escape(std::get<std::string>(value_));
    out += '"';
  } else if (is_array()) {
    out += '[';
    const auto& arr = std::get<Array>(value_);
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i) out += ',';
      arr[i].dump_to(out);
    }
    out += ']';
  } else {
    out += '{';
    const auto& obj = std::get<Object>(value_);
    bool first = true;
    for (const auto& [k, v] : obj) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += json_escape(k);
      out += "\":";
      v.dump_to(out);
    }
    out += '}';
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

void JsonlWriter::write(const Json& record) {
  out_ << record.dump() << '\n';
  ++records_;
}

}  // namespace darl
