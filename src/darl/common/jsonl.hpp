// darl/common/jsonl.hpp
//
// Minimal JSON value model + JSON-lines writer. Used to persist per-trial
// diagnostics from a study so external tools (or a later session) can replay
// the decision analysis without re-running the training campaign.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace darl {

/// A small owning JSON document node (null / bool / number / string /
/// array / object). Construction is via the static factories; rendering via
/// dump(). Numbers are always doubles, matching JSON semantics.
class Json {
 public:
  Json() : value_(nullptr) {}

  static Json null() { return Json(); }
  static Json boolean(bool b);
  static Json number(double v);
  static Json integer(std::int64_t v);
  static Json string(std::string s);
  static Json array();
  static Json object();

  /// Parse one JSON document (the whole string; trailing non-whitespace is
  /// an error). Accepts what dump() emits — plus standard escapes and
  /// nesting — and throws darl::InvalidArgument with a byte offset on
  /// malformed input. \uXXXX escapes decode to UTF-8.
  static Json parse(const std::string& text);

  /// Append to an array node. Throws unless this node is an array.
  void push_back(Json v);

  /// Set a key on an object node. Throws unless this node is an object.
  void set(const std::string& key, Json v);

  /// True if the node is of the given kind.
  bool is_null() const;
  bool is_bool() const;
  bool is_number() const;
  bool is_string() const;
  bool is_array() const;
  bool is_object() const;

  /// Accessors; throw darl::Error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Json>& as_array() const;
  const std::map<std::string, Json>& as_object() const;

  /// Render compact JSON (no whitespace). Strings are escaped; non-finite
  /// numbers render as null per JSON rules.
  std::string dump() const;

 private:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;

  void dump_to(std::string& out) const;
};

/// Escape a string for embedding in a JSON document (without quotes).
std::string json_escape(const std::string& s);

/// Appends one JSON object per line to a stream (JSON-lines format).
class JsonlWriter {
 public:
  explicit JsonlWriter(std::ostream& out) : out_(out) {}

  /// Write one record (any Json node) followed by a newline.
  void write(const Json& record);

  std::size_t records() const { return records_; }

 private:
  std::ostream& out_;
  std::size_t records_ = 0;
};

}  // namespace darl
