#include "darl/common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "darl/common/error.hpp"

namespace darl {

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

void TextTable::set_columns(std::vector<std::string> names,
                            std::vector<Align> aligns) {
  DARL_CHECK(!names.empty(), "table needs at least one column");
  DARL_CHECK(rows_.empty(), "set_columns after rows were added");
  if (aligns.empty()) aligns.assign(names.size(), Align::Left);
  DARL_CHECK(aligns.size() == names.size(),
             "alignment count " << aligns.size() << " != column count "
                                << names.size());
  columns_ = std::move(names);
  aligns_ = std::move(aligns);
}

void TextTable::add_row(std::vector<std::string> cells) {
  DARL_CHECK(!columns_.empty(), "set_columns must be called first");
  DARL_CHECK(cells.size() == columns_.size(),
             "row has " << cells.size() << " cells, table has "
                        << columns_.size() << " columns");
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::add_rule() { rows_.push_back(Row{{}, true}); }

std::size_t TextTable::row_count() const {
  std::size_t n = 0;
  for (const auto& r : rows_)
    if (!r.rule) ++n;
  return n;
}

std::string TextTable::render(int indent) const {
  DARL_CHECK(!columns_.empty(), "render of an empty table");
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  for (const auto& row : rows_) {
    if (row.rule) continue;
    for (std::size_t i = 0; i < row.cells.size(); ++i)
      widths[i] = std::max(widths[i], row.cells[i].size());
  }

  const std::string pad(static_cast<std::size_t>(std::max(indent, 0)), ' ');
  auto rule_line = [&] {
    std::string s = pad + "+";
    for (std::size_t w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto cell_line = [&](const std::vector<std::string>& cells) {
    std::string s = pad + "|";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const std::string& c = cells[i];
      const std::size_t fill = widths[i] - c.size();
      s += ' ';
      if (aligns_[i] == Align::Right) s += std::string(fill, ' ') + c;
      else s += c + std::string(fill, ' ');
      s += " |";
    }
    return s + "\n";
  };

  std::ostringstream out;
  out << rule_line() << cell_line(columns_) << rule_line();
  for (const auto& row : rows_) {
    if (row.rule) out << rule_line();
    else out << cell_line(row.cells);
  }
  out << rule_line();
  return out.str();
}

}  // namespace darl
