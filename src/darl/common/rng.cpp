#include "darl/common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace darl {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) : seed_(seed), engine_(splitmix64(seed)) {}

Rng Rng::split(std::uint64_t index) const {
  // Mix the parent seed with the child index through two SplitMix64 rounds
  // so that (seed, index) pairs map to well-separated child seeds.
  return Rng(splitmix64(splitmix64(seed_) ^ (0xD1B54A32D192ED03ull * (index + 1))));
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  DARL_CHECK(lo <= hi, "uniform bounds inverted: [" << lo << ", " << hi << ")");
  if (lo == hi) return lo;
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

double Rng::normal() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::normal(double mean, double stddev) {
  DARL_CHECK(stddev >= 0.0, "negative stddev " << stddev);
  if (stddev == 0.0) return mean;
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

std::int64_t Rng::randint(std::int64_t lo, std::int64_t hi) {
  DARL_CHECK(lo <= hi, "randint bounds inverted: [" << lo << ", " << hi << "]");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

bool Rng::bernoulli(double p) {
  DARL_CHECK(p >= 0.0 && p <= 1.0, "bernoulli p out of [0,1]: " << p);
  return std::bernoulli_distribution(p)(engine_);
}

std::size_t Rng::index(std::size_t n) {
  DARL_CHECK(n > 0, "index() over empty range");
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  DARL_CHECK(!weights.empty(), "categorical() over empty weights");
  double total = 0.0;
  for (double w : weights) {
    DARL_CHECK(w >= 0.0 && std::isfinite(w), "negative or non-finite weight " << w);
    total += w;
  }
  DARL_CHECK(total > 0.0, "categorical() needs a positive weight");
  double r = uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // floating-point edge: r landed on total
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::shuffle(idx.begin(), idx.end(), engine_);
  return idx;
}

void Rng::fill_normal(std::vector<double>& out) {
  std::normal_distribution<double> dist(0.0, 1.0);
  for (double& v : out) v = dist(engine_);
}

}  // namespace darl
