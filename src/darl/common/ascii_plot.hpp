// darl/common/ascii_plot.hpp
//
// Terminal scatter-plot rendering. The ranking stage of the methodology
// presents Pareto fronts as graphs; in a terminal harness we render them as
// ASCII scatter plots with labelled points and highlighted non-dominated
// solutions, matching the role of Figures 4-6 in the paper.

#pragma once

#include <string>
#include <vector>

namespace darl {

/// One point in a scatter plot.
struct PlotPoint {
  double x = 0.0;
  double y = 0.0;
  /// Short label printed next to the marker (typically the configuration id).
  std::string label;
  /// Highlighted points are drawn with '#' and listed in the legend
  /// (used for Pareto-optimal solutions).
  bool highlight = false;
};

/// Options controlling scatter-plot rendering.
struct PlotOptions {
  int width = 72;    ///< plot-area columns (>= 16)
  int height = 22;   ///< plot-area rows (>= 8)
  std::string title;
  std::string x_label;
  std::string y_label;
};

/// Render a scatter plot to a multi-line string. Points outside the data
/// bounding box never occur (the box is computed from the data, with a small
/// margin). Highlighted points win grid-cell collisions.
std::string render_scatter(const std::vector<PlotPoint>& points,
                           const PlotOptions& options);

}  // namespace darl
