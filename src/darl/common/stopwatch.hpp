// darl/common/stopwatch.hpp
//
// Wall-clock stopwatch. Note: *reported* study metrics use the simulated
// cluster clock (darl/simcluster); this stopwatch only measures real host
// time for diagnostics.

#pragma once

#include <chrono>

namespace darl {

/// Monotonic wall-clock stopwatch, started at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace darl
