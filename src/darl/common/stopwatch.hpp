// darl/common/stopwatch.hpp
//
// Wall-clock stopwatch. Note: *reported* study metrics use the simulated
// cluster clock (darl/simcluster); this stopwatch only measures real host
// time for diagnostics. This file (with obs/ and common/log) is the
// whitelisted wall-clock site: darl_lint's `wall-clock` rule rejects
// direct now()/system_clock reads anywhere else, so host time cannot
// leak into results by accident.

#pragma once

#include <chrono>
#include <cstdint>

namespace darl {

/// Monotonic wall-clock stopwatch, started at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

namespace detail {
/// Monotonic anchor captured during static initialization — close enough to
/// process start for log/trace correlation purposes.
inline const std::chrono::steady_clock::time_point process_start =
    std::chrono::steady_clock::now();
}  // namespace detail

/// Monotonic nanoseconds since (approximately) process start. Log lines and
/// trace spans share this clock so they can be correlated.
inline std::uint64_t process_uptime_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - detail::process_start)
          .count());
}

/// Same clock in seconds.
inline double process_uptime_seconds() {
  return static_cast<double>(process_uptime_ns()) * 1e-9;
}

}  // namespace darl
