#include "darl/common/csv.hpp"

#include <iomanip>

#include "darl/common/error.hpp"

namespace darl {

std::string csv_escape(const std::string& value) {
  const bool needs_quotes =
      value.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return value;
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::ostream& out) : out_(out) {}

void CsvWriter::header(const std::vector<std::string>& columns) {
  DARL_CHECK(!wrote_header_ && rows_ == 0 && !in_row_,
             "header() must be the first write");
  DARL_CHECK(!columns.empty(), "empty CSV header");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(columns[i]);
  }
  out_ << '\n';
  header_cols_ = columns.size();
  wrote_header_ = true;
}

void CsvWriter::begin_row() {
  DARL_CHECK(!in_row_, "begin_row() while a row is open");
  in_row_ = true;
  row_cols_ = 0;
}

void CsvWriter::raw_field(const std::string& escaped) {
  DARL_CHECK(in_row_, "field written outside begin_row()/end_row()");
  if (row_cols_) out_ << ',';
  out_ << escaped;
  ++row_cols_;
}

void CsvWriter::field(const std::string& value) { raw_field(csv_escape(value)); }

void CsvWriter::number(double value, int precision) {
  std::ostringstream oss;
  oss << std::setprecision(precision) << value;
  raw_field(oss.str());
}

void CsvWriter::integer(long long value) { raw_field(std::to_string(value)); }

void CsvWriter::end_row() {
  DARL_CHECK(in_row_, "end_row() without begin_row()");
  if (wrote_header_) {
    DARL_CHECK(row_cols_ == header_cols_,
               "row has " << row_cols_ << " fields, header has " << header_cols_);
  }
  out_ << '\n';
  in_row_ = false;
  ++rows_;
}

}  // namespace darl
