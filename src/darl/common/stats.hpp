// darl/common/stats.hpp
//
// Streaming and batch descriptive statistics used by the metric collection
// stage of the methodology (means/medians over episode rewards, power
// samples, timing samples).

#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace darl {

/// Numerically stable streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  /// Add one observation.
  void push(double x);

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

  /// Number of observations pushed so far.
  std::size_t count() const { return n_; }

  /// Mean of the observations; 0 when empty.
  double mean() const { return n_ ? mean_ : 0.0; }

  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;

  /// Square root of variance().
  double stddev() const;

  /// Smallest observation; +inf when empty.
  double min() const { return min_; }

  /// Largest observation; -inf when empty.
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Arithmetic mean of a vector; 0 when empty.
double mean(const std::vector<double>& xs);

/// Unbiased sample standard deviation; 0 with fewer than two elements.
double stddev(const std::vector<double>& xs);

/// Median (average of the two middle elements for even sizes).
/// Requires a non-empty vector.
double median(std::vector<double> xs);

// The sample-percentile helper moved to darl/obs/percentile.hpp
// (obs::percentile): it is telemetry math, shared with the histogram-bucket
// estimator the exporter consumers need.

/// Exponential moving average of a series with smoothing factor alpha in
/// (0, 1]; returns a series of the same length.
std::vector<double> ema(const std::vector<double>& xs, double alpha);

}  // namespace darl
