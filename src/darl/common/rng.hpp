// darl/common/rng.hpp
//
// Deterministic, splittable random number generation.
//
// Every stochastic component in darl (environments, policies, exploratory
// methods, backends) receives an explicit Rng so that a study is exactly
// reproducible from its seed — the reproducibility concern the paper raises
// for distributed learning is handled by *construction* here: parallel
// workers draw from independent child streams obtained via Rng::split().

#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "darl/common/error.hpp"

namespace darl {

/// Seeded pseudo-random generator wrapping std::mt19937_64 with the sampling
/// helpers the rest of darl needs. Copyable (copies continue the same
/// stream independently) and splittable into statistically independent
/// child streams.
class Rng {
 public:
  /// Construct from a 64-bit seed. Two Rngs with the same seed produce the
  /// same sequence on every platform (mt19937_64 is fully specified).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Derive the i-th child stream. Children with different indices, or from
  /// parents with different seeds, are independent for practical purposes
  /// (seeded via SplitMix64 of the parent seed and the index).
  Rng split(std::uint64_t index) const;

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Standard normal draw.
  double normal();

  /// Normal draw with the given mean and standard deviation (stddev >= 0).
  double normal(double mean, double stddev);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t randint(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Sample an index from an unnormalized non-negative weight vector.
  /// Requires at least one strictly positive weight.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Fill `out` with standard normal draws.
  void fill_normal(std::vector<double>& out);

  /// The seed this Rng was constructed with.
  std::uint64_t seed() const { return seed_; }

  /// Access the underlying engine (for std::shuffle and friends).
  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

/// SplitMix64 mixing function — used for seed derivation; exposed for tests.
std::uint64_t splitmix64(std::uint64_t x);

/// FNV-1a 64-bit hash of a byte string. Stable across platforms (unlike
/// std::hash), so it is safe to persist — used for campaign-cache config
/// digests and for deriving per-configuration seed streams.
std::uint64_t fnv1a64(const std::string& bytes);

}  // namespace darl
