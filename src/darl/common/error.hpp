// darl/common/error.hpp
//
// Error handling primitives shared by every darl module.
//
// darl follows a "throw on contract violation" policy: library entry points
// validate their inputs with DARL_CHECK and throw darl::Error on failure.
// Internal invariants use DARL_ASSERT, which compiles to the same check but
// documents that a failure is a library bug rather than a user error.

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace darl {

/// Base exception type for every error raised by the darl libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// Raised when a user-supplied argument violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what_arg) : Error(what_arg) {}
};

/// Raised when an operation is attempted on an object in the wrong state
/// (e.g. stepping an environment that has not been reset).
class InvalidState : public Error {
 public:
  explicit InvalidState(const std::string& what_arg) : Error(what_arg) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream oss;
  oss << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) oss << " — " << msg;
  if (std::string(kind) == "DARL_CHECK") throw InvalidArgument(oss.str());
  throw Error(oss.str());
}

}  // namespace detail
}  // namespace darl

/// Validate a user-facing precondition; throws darl::InvalidArgument with
/// location info when `cond` is false. `msg` is streamed, so
/// `DARL_CHECK(n > 0, "n was " << n)` works.
#define DARL_CHECK(cond, msg)                                                \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream darl_check_oss_;                                    \
      darl_check_oss_ << msg;                                                \
      ::darl::detail::throw_check_failure("DARL_CHECK", #cond, __FILE__,     \
                                          __LINE__, darl_check_oss_.str()); \
    }                                                                        \
  } while (false)

/// Validate an internal invariant; a failure indicates a darl bug.
#define DARL_ASSERT(cond, msg)                                               \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream darl_check_oss_;                                    \
      darl_check_oss_ << msg;                                                \
      ::darl::detail::throw_check_failure("DARL_ASSERT", #cond, __FILE__,    \
                                          __LINE__, darl_check_oss_.str()); \
    }                                                                        \
  } while (false)
