// darl/common/table.hpp
//
// Plain-text table rendering for paper-style result tables (Table I) and
// sorted-array ranking output.

#pragma once

#include <string>
#include <vector>

namespace darl {

/// Column alignment for TextTable.
enum class Align { Left, Right };

/// Accumulates rows of string cells and renders an aligned, ruled table.
class TextTable {
 public:
  /// Define the columns. Must be called before adding rows.
  void set_columns(std::vector<std::string> names,
                   std::vector<Align> aligns = {});

  /// Add a data row; must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Insert a horizontal rule after the last added row.
  void add_rule();

  /// Render the table with a header rule; `indent` spaces prefix each line.
  std::string render(int indent = 0) const;

  std::size_t row_count() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule = false;
  };
  std::vector<std::string> columns_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

/// Format a double with `decimals` fixed decimal places.
std::string fixed(double value, int decimals);

}  // namespace darl
