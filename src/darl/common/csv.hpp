// darl/common/csv.hpp
//
// Minimal RFC-4180-style CSV emission. Study results are exported as CSV so
// downstream users can post-process campaigns with their own tooling.

#pragma once

#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace darl {

/// Writes one CSV document to a stream. Fields containing commas, quotes or
/// newlines are quoted; embedded quotes are doubled.
class CsvWriter {
 public:
  /// The writer does not own `out`; it must outlive the writer.
  explicit CsvWriter(std::ostream& out);

  /// Emit a header row. Must be called before any data row, at most once.
  void header(const std::vector<std::string>& columns);

  /// Begin a new row; fields are appended with field()/number().
  void begin_row();

  /// Append a string field to the current row.
  void field(const std::string& value);

  /// Append a numeric field with up to `precision` significant digits.
  void number(double value, int precision = 10);

  /// Append an integer field.
  void integer(long long value);

  /// Finish the current row (writes the line).
  void end_row();

  /// Number of data rows written so far.
  std::size_t rows() const { return rows_; }

 private:
  void raw_field(const std::string& escaped);

  std::ostream& out_;
  std::size_t rows_ = 0;
  std::size_t header_cols_ = 0;
  std::size_t row_cols_ = 0;
  bool in_row_ = false;
  bool wrote_header_ = false;
};

/// Escape a single CSV field per RFC 4180.
std::string csv_escape(const std::string& value);

}  // namespace darl
