// darl/common/thread_safety.hpp
//
// Lock-discipline annotations, checked twice:
//
//   1. Everywhere, by `darl_verify` (tools/verify_engine.hpp): the
//      project's cross-file analyzer harvests these macros from every
//      translation unit and enforces guarded-field access, the global
//      lock-acquisition order, and the blocking-call rules on each
//      tools/check.sh run — with any compiler.
//   2. Under Clang, by the real thing: the macros expand to Clang's
//      thread-safety attributes, so `-Wthread-safety` re-checks the same
//      contracts with full type information. (With libstdc++'s
//      unannotated std::mutex the attributes are inert — Clang ignores
//      attributes whose argument is not a capability type — which is why
//      CMake pairs -Wthread-safety with -Wno-thread-safety-attributes;
//      against an annotated standard library, e.g. libc++ with
//      _LIBCPP_ENABLE_THREAD_SAFETY_ANNOTATIONS, the analysis is live.)
//
// Under GCC every macro expands to nothing (tests assert this), so
// annotations never change codegen or portability.
//
// Usage:
//   std::deque<Request*> queue_ DARL_GUARDED_BY(queue_mutex_);
//     The field may only be read or written while `queue_mutex_` is held
//     (or from a function annotated DARL_REQUIRES(queue_mutex_)).
//   void publish_queue_depth() DARL_REQUIRES(queue_mutex_);
//     Callers must already hold the mutex; darl_verify treats the body
//     as holding it.
//   std::mutex a_ DARL_ACQUIRED_BEFORE(b_);
//     Declares the global order a_ -> b_; the edge joins the lock graph
//     darl_verify checks for cycles.
//   void log_message(...) DARL_EXCLUDES(g_mutex);
//     Callers must NOT hold the mutex (the function acquires it).
//     Documentation + Clang only; darl_verify does not enforce it.

#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define DARL_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DARL_THREAD_ANNOTATION
#define DARL_THREAD_ANNOTATION(x)  // expands to nothing outside Clang
#endif

/// Field may only be accessed while holding `mu`.
#define DARL_GUARDED_BY(mu) DARL_THREAD_ANNOTATION(guarded_by(mu))

/// Function requires the caller to already hold every listed mutex.
#define DARL_REQUIRES(...) \
  DARL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// This mutex is always acquired before every listed mutex.
#define DARL_ACQUIRED_BEFORE(...) \
  DARL_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// Function must be called WITHOUT the listed mutexes held (it acquires
/// them itself, or hands work to something that does).
#define DARL_EXCLUDES(...) DARL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
