#include "darl/frameworks/distributed.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "darl/common/error.hpp"
#include "darl/common/stopwatch.hpp"
#include "darl/net/param_server.hpp"
#include "darl/net/queue.hpp"
#include "darl/net/socket.hpp"
#include "darl/net/wire.hpp"
#include "darl/obs/metrics.hpp"
#include "darl/obs/trace.hpp"
#include "darl/rl/checkpoint.hpp"

namespace darl::frameworks {

namespace {

/// The hidden sizes the algorithm spec would build with (only the block
/// matching `kind` is read — mirrors rl::make_algorithm).
std::vector<std::size_t> hidden_of(const rl::AlgorithmSpec& spec) {
  switch (spec.kind) {
    case rl::AlgoKind::PPO: return spec.ppo.hidden;
    case rl::AlgoKind::SAC: return spec.sac.hidden;
    case rl::AlgoKind::IMPALA: return spec.impala.hidden;
  }
  throw InvalidArgument("unknown AlgoKind");
}

/// Directory holding the running executable (via /proc/self/exe), used to
/// resolve the default darl_worker binary next to darl_study.
std::string self_exe_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return ".";
  buf[n] = '\0';
  const std::string path(buf);
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

/// Fresh per-process Unix-socket endpoint for runs that did not pick one.
std::string auto_endpoint() {
  static std::atomic<unsigned> counter{0};
  std::ostringstream os;
  os << "unix:/tmp/darl_net_" << ::getpid() << "_" << counter.fetch_add(1)
     << ".sock";
  return os.str();
}

/// fork + execv. The child execs immediately (async-signal-safe path only),
/// which keeps the spawn safe in a process that already runs threads (the
/// obs exporter, collection workers).
pid_t spawn_process(const std::vector<std::string>& argv) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  DARL_CHECK(pid >= 0, "fork failed: " << std::strerror(errno));
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    // exec failed; nothing of the parent may run in this child.
    std::_Exit(127);
  }
  return pid;
}

/// waitpid with EINTR retry; exit code, 128+signal, or -1.
int wait_child(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) return -1;
  }
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

/// Kills every still-owned child on scope exit (error paths); the normal
/// path waits for clean exits and disarms.
class ChildReaper {
 public:
  ~ChildReaper() {
    for (const pid_t pid : pids_) {
      ::kill(pid, SIGKILL);
      wait_child(pid);
    }
  }
  void add(pid_t pid) { pids_.push_back(pid); }
  /// Graceful wait; throws when a child failed.
  void wait_all() {
    while (!pids_.empty()) {
      const pid_t pid = pids_.back();
      pids_.pop_back();
      const int code = wait_child(pid);
      if (code != 0) {
        throw net::NetError("actor process exited with status " +
                            std::to_string(code));
      }
    }
  }

 private:
  std::vector<pid_t> pids_;
};

/// Reader-side state for one actor connection. The reader thread is the
/// only writer of `error`/`saw_bye` until it exits; the learner thread
/// reads them only after join(), so the join is the synchronization.
struct ActorLink {
  net::MsgChannel channel;
  net::BoundedQueue<net::BatchMsg> inbox;
  std::thread reader;
  std::string error;
  bool saw_bye = false;

  explicit ActorLink(std::size_t inbox_capacity) : inbox(inbox_capacity) {}
};

}  // namespace

DistributedRllibBackend::DistributedRllibBackend(DistributedOptions options,
                                                 BackendCosts costs)
    : BackendBase(costs), options_(std::move(options)) {}

TrainResult DistributedRllibBackend::run(const TrainRequest& request) {
  const auto& dep = request.deployment;
  DARL_CHECK(dep.nodes >= 2,
             "DistributedRllibBackend needs >= 2 nodes (single-node jobs "
             "stay in-process)");
  DARL_CHECK(dep.cores_per_node >= 1, "invalid deployment "
                                          << dep.nodes << "x"
                                          << dep.cores_per_node);
  DARL_CHECK(request.total_timesteps > 0, "no timesteps requested");
  DARL_CHECK(!request.env_spec.empty(),
             "distributed run needs TrainRequest::env_spec (the remote "
             "actors rebuild the environment from it)");

  Stopwatch wall;

  // Probe the environment interface (same as the in-process backend).
  auto probe = request.env_factory();
  const std::size_t obs_dim = probe->observation_space().dim();
  const env::ActionSpace action_space = probe->action_space();
  probe.reset();

  auto algo = rl::make_algorithm(request.algo, obs_dim, action_space,
                                 Rng(request.seed).split(1).seed());

  const std::size_t cores = dep.cores_per_node;
  const std::size_t n_workers = dep.nodes * cores;
  const std::size_t n_remote = dep.nodes - 1;
  // Node 0's workers run in-process on threads with their global ids
  // (0..cores-1), seeded exactly as the in-process backend seeds them.
  auto workers = make_workers(request, *algo, cores);

  sim::SimCluster cluster(sim::ClusterSpec::paper_testbed(dep.nodes, cores));
  const double inference_mflop = algo->make_actor()->inference_cost_mflop();

  const std::size_t per_worker =
      std::max<std::size_t>(1, request.train_batch_total / n_workers);

  // --- bring the actor fleet up -------------------------------------------
  const std::string endpoint_str =
      options_.endpoint.empty() ? auto_endpoint() : options_.endpoint;
  net::Listener listener = net::listen_endpoint(
      net::Endpoint::parse(endpoint_str), static_cast<int>(dep.nodes));
  const std::string bound = listener.endpoint().str();

  ChildReaper children;
  if (options_.spawn_actors) {
    const std::string bin = options_.worker_bin.empty()
                                ? self_exe_dir() + "/darl_worker"
                                : options_.worker_bin;
    for (std::size_t node = 1; node < dep.nodes; ++node) {
      children.add(spawn_process(
          {bin, "--role", "actor", "--connect", bound, "--node",
           std::to_string(node), "--connect-timeout",
           std::to_string(options_.connect_timeout_s), "--io-timeout",
           std::to_string(options_.io_timeout_s)}));
    }
  }

  // Accept one connection per remote node; a missing actor surfaces as a
  // timeout here, not a hang (SO_RCVTIMEO bounds accept on Linux).
  net::set_recv_timeout(listener.fd(), options_.connect_timeout_s);
  std::vector<std::unique_ptr<ActorLink>> links(dep.nodes);  // [0] unused
  for (std::size_t i = 0; i < n_remote; ++i) {
    net::OwnedFd conn = net::accept_retry(listener.fd());
    if (!conn.valid()) {
      throw net::NetError("timed out waiting for " +
                          std::to_string(n_remote) + " actor(s) on " + bound);
    }
    DARL_COUNTER_ADD("net.accepts", 1);
    net::set_io_timeout(conn.get(), options_.io_timeout_s);
    net::MsgChannel ch(std::move(conn));
    const net::HelloMsg hello =
        net::decode_hello(ch.expect(net::MsgType::Hello));
    DARL_CHECK(hello.node >= 1 && hello.node < dep.nodes,
               "actor announced node " << hello.node << " outside 1.."
                                       << dep.nodes - 1);
    DARL_CHECK(links[hello.node] == nullptr,
               "two actors announced node " << hello.node);
    auto link = std::make_unique<ActorLink>(/*inbox_capacity=*/cores * 2);
    link->channel = std::move(ch);
    links[hello.node] = std::move(link);
  }

  // Ship each actor its job.
  net::JobMsg job;
  job.algo = request.algo.kind;
  job.hidden = hidden_of(request.algo);
  job.seed = request.seed;
  job.nodes = dep.nodes;
  job.cores = cores;
  job.per_worker = per_worker;
  job.obs_dim = obs_dim;
  job.action_dim = action_space.action_dim();
  job.env_spec = request.env_spec;
  for (std::size_t node = 1; node < dep.nodes; ++node) {
    job.node = node;
    links[node]->channel.send(net::MsgType::Job, net::encode_job(job));
  }

  // One reader thread per connection: the only thread that recv()s on the
  // channel (the learner thread only send()s — the MsgChannel contract).
  std::atomic<bool> stop_sent{false};
  for (std::size_t node = 1; node < dep.nodes; ++node) {
    ActorLink* link = links[node].get();
    link->reader = std::thread([link, &stop_sent] {
      try {
        net::MsgType type;
        std::string payload;
        while (link->channel.recv(type, payload)) {
          if (type == net::MsgType::Batch) {
            link->inbox.push(net::decode_batch_msg(payload));
          } else if (type == net::MsgType::Bye) {
            link->saw_bye = true;
            break;
          } else {
            link->error = std::string("unexpected ") + net::msg_type_name(type);
            break;
          }
        }
        if (!link->saw_bye && link->error.empty() &&
            !stop_sent.load(std::memory_order_acquire)) {
          link->error = "actor closed the connection mid-run";
        }
      } catch (const std::exception& e) {
        link->error = e.what();
      }
      link->inbox.close();
    });
  }
  const auto join_readers = [&links, &dep] {
    for (std::size_t node = 1; node < dep.nodes; ++node) {
      if (links[node]->reader.joinable()) links[node]->reader.join();
    }
  };

  // --- training loop (the in-process schedule, over the wire) -------------
  TrainResult result;
  try {
    // The parameter-server endpoint: every snapshot goes into the
    // serve::PolicyStore hot-swap chain and the retention ring the wire
    // ships from. Version v = parameters after v train calls.
    net::ParamServer pserver(request.algo.kind, obs_dim,
                             action_space.action_dim(), action_space,
                             hidden_of(request.algo));
    Vec params_current = algo->policy_params();
    Vec params_prev = params_current;
    pserver.publish(params_current);  // v0

    // Remote episode records accumulate per global worker id for the final
    // diagnostics (local workers keep their own).
    std::vector<std::vector<env::EpisodeRecord>> remote_episodes(n_workers);
    std::vector<net::BatchMsg> delayed_remote;
    double staleness_sum = 0.0;
    std::size_t staleness_batches = 0;

    std::size_t steps_done = 0;
    rl::TrainStats last_stats;
    const std::int64_t obs_trial = obs::current_trial();

    while (steps_done < request.total_timesteps) {
      const std::uint64_t t = result.iterations;
      Stopwatch phase;

      // --- policy sync: local workers read v_{max(t-1,0)} directly; remote
      // actors receive v_{max(t-2,0)} as checkpoint-v2 text — the
      // asynchronous-pipeline schedule, now over a real socket. The
      // simulated broadcast is the same run_transfer the in-process
      // backend issues.
      {
        DARL_SPAN("backend.sync");
        for (auto& w : workers) w->sync(params_prev);
        const std::uint64_t remote_version = t >= 2 ? t - 2 : 0;
        net::WeightsMsg weights;
        weights.version = remote_version;
        weights.checkpoint = pserver.checkpoint_text(remote_version);
        const std::string payload = net::encode_weights(weights);
        for (std::size_t node = 1; node < dep.nodes; ++node) {
          links[node]->channel.send(net::MsgType::Weights, payload);
          cluster.run_transfer(0, node,
                               static_cast<double>(algo->params_bytes()));
        }
      }
      result.sync_wall_seconds += phase.seconds();
      phase.reset();

      // --- collection: local workers on threads; remote batches pulled
      // from the per-connection inboxes (bounded — a slow learner
      // backpressures the actors through the transport).
      std::vector<rl::WorkerBatch> local_batches(cores);
      std::vector<net::BatchMsg> remote_batches;
      {
        DARL_SPAN("backend.collect");
        std::vector<std::thread> threads;
        threads.reserve(cores);
        for (std::size_t i = 0; i < cores; ++i) {
          threads.emplace_back([&, i] {
            obs::TrialScope tag(obs_trial);
            local_batches[i] = workers[i]->collect(per_worker);
          });
        }
        remote_batches.reserve(n_remote * cores);
        for (std::size_t node = 1; node < dep.nodes; ++node) {
          for (std::size_t c = 0; c < cores; ++c) {
            net::BatchMsg msg;
            const net::QueueOutcome got =
                links[node]->inbox.pop(msg, options_.io_timeout_s);
            if (got != net::QueueOutcome::Ok) {
              for (auto& th : threads) th.join();
              const std::string why = got == net::QueueOutcome::TimedOut
                                          ? "timed out waiting for a batch"
                                          : links[node]->error;
              throw net::NetError("actor node " + std::to_string(node) +
                                  ": " + why);
            }
            remote_batches.push_back(std::move(msg));
          }
        }
        for (auto& th : threads) th.join();

        // Deterministic consumption order regardless of arrival order.
        std::sort(remote_batches.begin(), remote_batches.end(),
                  [](const net::BatchMsg& a, const net::BatchMsg& b) {
                    return a.worker < b.worker;
                  });
        const std::uint64_t expect_version = t >= 2 ? t - 2 : 0;
        for (auto& msg : remote_batches) {
          DARL_CHECK(msg.version == expect_version,
                     "batch from worker " << msg.worker << " carries version "
                                          << msg.version << ", expected "
                                          << expect_version);
          auto& eps = remote_episodes[msg.worker];
          eps.insert(eps.end(), msg.episodes.begin(), msg.episodes.end());
        }

        // Simulated collection phase: identical WorkerLoad sequence to the
        // in-process backend (global worker id order).
        std::vector<sim::SimCluster::WorkerLoad> loads;
        loads.reserve(n_workers);
        for (std::size_t i = 0; i < cores; ++i) {
          const CollectCost cost = workers[i]->take_cost();
          loads.push_back({0, worker_busy_seconds(cost, inference_mflop)});
        }
        for (const auto& msg : remote_batches) {
          const CollectCost cost{msg.env_cost_units,
                                 static_cast<std::size_t>(msg.inferences),
                                 static_cast<std::size_t>(msg.steps)};
          loads.push_back({msg.worker / cores,
                           worker_busy_seconds(cost, inference_mflop)});
        }
        cluster.run_parallel_phase(loads);
      }
      result.collect_wall_seconds += phase.seconds();
      phase.reset();

      // --- sample shipping (reported cost; the real bytes already flowed).
      {
        DARL_SPAN("backend.sync");
        for (std::size_t node = 1; node < dep.nodes; ++node) {
          double bytes = 0.0;
          for (const auto& msg : remote_batches) {
            if (msg.worker / cores == node) {
              bytes += static_cast<double>(msg.transitions.size()) *
                       static_cast<double>(algo->transition_bytes());
            }
          }
          cluster.run_transfer(node, 0, bytes);
        }
      }
      result.sync_wall_seconds += phase.seconds();
      phase.reset();

      // --- learner update: last iteration's remote batches first (their
      // wire version tags feed the staleness account), then fresh local
      // batches — the in-process consumption order.
      {
        DARL_SPAN("backend.learn");
        std::vector<rl::WorkerBatch> train_batches;
        train_batches.reserve(delayed_remote.size() + cores);
        for (auto& msg : delayed_remote) {
          staleness_sum += static_cast<double>(t - msg.version);
          ++staleness_batches;
          train_batches.push_back(
              rl::WorkerBatch{static_cast<std::size_t>(msg.worker),
                              std::move(msg.transitions)});
        }
        delayed_remote = std::move(remote_batches);
        const std::uint64_t local_version = t >= 1 ? t - 1 : 0;
        for (std::size_t i = 0; i < cores; ++i) {
          staleness_sum += static_cast<double>(t - local_version);
          ++staleness_batches;
          train_batches.push_back(std::move(local_batches[i]));
        }
        last_stats = algo->train(train_batches);
        const double train_core_seconds = cluster.seconds_for_mflop(
            0, last_stats.train_cost_mflop * costs_.train_tax);
        cluster.run_compute(0, train_core_seconds, cores,
                            costs_.train_parallel_efficiency);
        cluster.run_idle(costs_.iteration_overhead_s);
        params_prev = std::move(params_current);
        params_current = algo->policy_params();
        pserver.publish(params_current);  // v_{t+1}
      }
      result.learn_wall_seconds += phase.seconds();

      steps_done += per_worker * n_workers;
      ++result.iterations;
      if (staleness_batches > 0) {
        DARL_GAUGE_SET("net.staleness",
                       staleness_sum / static_cast<double>(staleness_batches));
      }
    }

    // --- orderly shutdown: Stop out, Bye back, readers drain.
    stop_sent.store(true, std::memory_order_release);
    for (std::size_t node = 1; node < dep.nodes; ++node) {
      links[node]->channel.send(net::MsgType::Stop, std::string());
    }
    join_readers();
    for (std::size_t node = 1; node < dep.nodes; ++node) {
      if (!links[node]->error.empty()) {
        throw net::NetError("actor node " + std::to_string(node) + ": " +
                            links[node]->error);
      }
      DARL_CHECK(links[node]->saw_bye,
                 "actor node " << node << " never sent Bye");
    }
    if (options_.spawn_actors) children.wait_all();

    result.timesteps = steps_done;
    result.net_staleness =
        staleness_batches > 0
            ? staleness_sum / static_cast<double>(staleness_batches)
            : 0.0;
    result.final_policy_loss = last_stats.policy_loss;
    result.final_value_loss = last_stats.value_loss;
    result.final_entropy = last_stats.entropy;

    std::vector<std::vector<env::EpisodeRecord>> episodes_per_worker;
    episodes_per_worker.reserve(n_workers);
    for (std::size_t i = 0; i < n_workers; ++i) {
      episodes_per_worker.push_back(i < cores ? workers[i]->episodes()
                                              : remote_episodes[i]);
    }
    finalize(request, *algo, episodes_per_worker, cluster, result);
  } catch (...) {
    // Unblock and reap the readers before ~ActorLink (a reader may be
    // parked in recv or in a full inbox's push); ChildReaper kills any
    // spawned actors on unwind.
    for (auto& link : links) {
      if (link) {
        link->inbox.close();
        net::shutdown_socket(link->channel.fd());
      }
    }
    join_readers();
    throw;
  }

  result.wall_seconds = wall.seconds();
  return result;
}

std::size_t run_actor(const std::string& endpoint, std::size_t node,
                      const EnvSpecResolver& resolver,
                      double connect_timeout_s, double io_timeout_s) {
  DARL_CHECK(node >= 1, "actor node must be >= 1 (node 0 is the learner)");
  DARL_CHECK(resolver != nullptr, "actor needs an env-spec resolver");

  net::OwnedFd fd = net::connect_endpoint(net::Endpoint::parse(endpoint),
                                          connect_timeout_s);
  net::set_io_timeout(fd.get(), io_timeout_s);
  net::MsgChannel channel(std::move(fd));
  DARL_COUNTER_ADD("net.connects", 1);

  net::HelloMsg hello;
  hello.node = node;
  channel.send(net::MsgType::Hello, net::encode_hello(hello));
  const net::JobMsg job = net::decode_job(channel.expect(net::MsgType::Job));
  DARL_CHECK(job.node == node, "job addressed to node " << job.node
                                                        << ", this is node "
                                                        << node);
  DARL_CHECK(job.cores >= 1 && job.nodes > node, "malformed job topology");

  env::EnvFactory factory = resolver(job.env_spec);
  DARL_CHECK(factory != nullptr, "env-spec resolver rejected the spec");
  auto probe = factory();
  const std::size_t obs_dim = probe->observation_space().dim();
  const env::ActionSpace action_space = probe->action_space();
  probe.reset();
  DARL_CHECK(obs_dim == job.obs_dim &&
                 action_space.action_dim() == job.action_dim,
             "environment interface mismatch: local " << obs_dim << "/"
                                                      << action_space.action_dim()
                                                      << ", job " << job.obs_dim
                                                      << "/" << job.action_dim);

  // Inference-only algorithm shell: act behavior is fully determined by
  // the architecture plus the synced parameters, so learner-side
  // hyperparameters never need to travel.
  rl::AlgorithmSpec spec;
  spec.kind = job.algo;
  spec.ppo.hidden = job.hidden;
  spec.sac.hidden = job.hidden;
  spec.impala.hidden = job.hidden;
  auto algo = rl::make_algorithm(spec, obs_dim, action_space,
                                 Rng(job.seed).split(1).seed());

  // This node's workers, with their *global* ids and the exact per-id
  // seed streams the in-process backend derives.
  const std::size_t cores = job.cores;
  const Rng seeder(job.seed);
  std::vector<std::unique_ptr<RolloutWorker>> workers;
  std::vector<std::size_t> shipped_episodes(cores, 0);
  workers.reserve(cores);
  for (std::size_t c = 0; c < cores; ++c) {
    const std::size_t gid = node * cores + c;
    auto e = factory();
    DARL_CHECK(e != nullptr, "env factory returned null");
    workers.push_back(std::make_unique<RolloutWorker>(
        gid, std::move(e), algo->make_actor(), seeder.split(100 + gid).seed()));
  }

  // Outbound queue: collection threads block once two batches are in
  // flight, so a slow learner throttles the actor instead of growing an
  // unbounded send buffer.
  net::BoundedQueue<net::BatchMsg> outbox(2);
  std::string send_error;
  std::thread sender([&] {
    try {
      net::BatchMsg msg;
      while (outbox.pop(msg) == net::QueueOutcome::Ok) {
        channel.send(net::MsgType::Batch, net::encode_batch_msg(msg));
      }
    } catch (const std::exception& e) {
      send_error = e.what();
      outbox.close();
    }
  });

  std::size_t iterations = 0;
  bool stopped = false;
  try {
    net::MsgType type;
    std::string payload;
    while (channel.recv(type, payload)) {
      if (type == net::MsgType::Stop) {
        stopped = true;
        break;
      }
      if (type != net::MsgType::Weights) {
        throw net::WireError(std::string("actor expected Weights, got ") +
                             net::msg_type_name(type));
      }
      const net::WeightsMsg weights = net::decode_weights(payload);
      std::istringstream ck_in(weights.checkpoint);
      const rl::Checkpoint ck = rl::load_checkpoint(ck_in);
      DARL_CHECK(ck.kind == job.algo && ck.obs_dim == obs_dim,
                 "shipped checkpoint does not match the job interface");

      std::vector<std::thread> threads;
      threads.reserve(cores);
      for (std::size_t c = 0; c < cores; ++c) {
        threads.emplace_back([&, c] {
          RolloutWorker& w = *workers[c];
          w.sync(ck.params);
          net::BatchMsg msg;
          msg.worker = node * cores + c;
          msg.version = weights.version;
          rl::WorkerBatch batch = w.collect(job.per_worker);
          msg.transitions = std::move(batch.transitions);
          const CollectCost cost = w.take_cost();
          msg.env_cost_units = cost.env_cost_units;
          msg.inferences = cost.inferences;
          msg.steps = cost.steps;
          const auto& eps = w.episodes();
          msg.episodes.assign(eps.begin() + static_cast<std::ptrdiff_t>(
                                                shipped_episodes[c]),
                              eps.end());
          shipped_episodes[c] = eps.size();
          outbox.push(std::move(msg));
        });
      }
      for (auto& th : threads) th.join();
      // A dead sender shows up as a closed outbox; its reason
      // (send_error) is only safe to read after the join below.
      if (outbox.closed()) break;
      ++iterations;
    }
  } catch (...) {
    outbox.close();
    if (sender.joinable()) sender.join();
    throw;
  }

  outbox.close();
  sender.join();
  if (!send_error.empty()) throw net::NetError(send_error);
  if (!stopped) throw net::NetError("learner vanished before sending Stop");
  net::ByeMsg bye;
  bye.node = node;
  channel.send(net::MsgType::Bye, net::encode_bye(bye));
  return iterations;
}

std::unique_ptr<Backend> make_distributed_backend(
    const DistributedOptions& options) {
  return std::make_unique<DistributedRllibBackend>(options);
}

std::unique_ptr<Backend> make_distributed_backend(
    const DistributedOptions& options, const BackendCosts& costs) {
  return std::make_unique<DistributedRllibBackend>(options, costs);
}

}  // namespace darl::frameworks
