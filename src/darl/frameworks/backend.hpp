// darl/frameworks/backend.hpp
//
// The framework-backend interface and the three implementations mirroring
// the architectures the paper attributes to Ray RLlib, Stable Baselines and
// TF-Agents. Backends execute real training (threads, environments, neural
// updates) while replaying their coordination structure against the
// simulated cluster for the time/energy metrics.

#pragma once

#include <memory>
#include <vector>

#include "darl/frameworks/costs.hpp"
#include "darl/frameworks/types.hpp"
#include "darl/frameworks/worker.hpp"
#include "darl/simcluster/cluster.hpp"

namespace darl::frameworks {

/// A training-framework backend: runs one TrainRequest end to end.
class Backend {
 public:
  virtual ~Backend() = default;

  virtual FrameworkKind kind() const = 0;
  const char* name() const { return framework_name(kind()); }

  /// Execute the training job. Throws darl::InvalidArgument when the
  /// deployment is not supported by this framework (e.g. multi-node
  /// Stable Baselines — the paper's frameworks differ exactly here).
  virtual TrainResult run(const TrainRequest& request) = 0;
};

/// Shared machinery of the three backends.
class BackendBase : public Backend {
 protected:
  explicit BackendBase(BackendCosts costs) : costs_(costs) {}

  /// Convert one worker's collection cost into simulated busy core-seconds.
  double worker_busy_seconds(const CollectCost& cost,
                             double inference_mflop) const;

  /// Build `n` workers, seeding worker i deterministically from the
  /// request seed.
  std::vector<std::unique_ptr<RolloutWorker>> make_workers(
      const TrainRequest& request, const rl::Algorithm& algo, std::size_t n) const;

  /// Final greedy evaluation on a fresh environment (fixed eval seed), and
  /// aggregation of training-episode diagnostics into `result`.
  void finalize(const TrainRequest& request, rl::Algorithm& algo,
                const std::vector<std::unique_ptr<RolloutWorker>>& workers,
                const sim::SimCluster& cluster, TrainResult& result) const;

  /// Same, from per-worker episode records instead of live workers — the
  /// multi-process runtime's remote workers ship their episode records
  /// over the wire, so the learner finalizes from data, not objects.
  /// `episodes_per_worker[i]` must be worker i's records in training
  /// order.
  void finalize(const TrainRequest& request, rl::Algorithm& algo,
                const std::vector<std::vector<env::EpisodeRecord>>& episodes_per_worker,
                const sim::SimCluster& cluster, TrainResult& result) const;

  BackendCosts costs_;
};

/// Ray-RLlib-style distributed actor/learner: one rollout worker per core
/// on every node, samples shipped to the learner on node 0, parameter
/// broadcasts to remote nodes. Remote workers act with a one-iteration-old
/// policy snapshot (asynchronous shipping), the mechanism behind the
/// paper's multi-node reward-reproducibility caveat. Supports 1..N nodes.
class RllibBackend final : public BackendBase {
 public:
  explicit RllibBackend(BackendCosts costs = default_costs(FrameworkKind::RayRllib));
  FrameworkKind kind() const override { return FrameworkKind::RayRllib; }
  TrainResult run(const TrainRequest& request) override;
};

/// Stable-Baselines-style single-node vectorized training: one vectorized
/// environment per CPU core stepped in lockstep, batched inference on the
/// driver, learner update every `steps_per_env` steps — so the total batch
/// (and hence the update frequency per sample) scales with the core count.
class StableBaselinesBackend final : public BackendBase {
 public:
  explicit StableBaselinesBackend(
      BackendCosts costs = default_costs(FrameworkKind::StableBaselines));
  FrameworkKind kind() const override { return FrameworkKind::StableBaselines; }
  TrainResult run(const TrainRequest& request) override;
};

/// TF-Agents-style single-node parallel driver: a fixed total collection
/// batch spread over per-core environment workers, batched inference, and
/// graph-compiled (cheap) learner updates.
class TfAgentsBackend final : public BackendBase {
 public:
  explicit TfAgentsBackend(
      BackendCosts costs = default_costs(FrameworkKind::TfAgents));
  FrameworkKind kind() const override { return FrameworkKind::TfAgents; }
  TrainResult run(const TrainRequest& request) override;
};

/// Factory over FrameworkKind.
std::unique_ptr<Backend> make_backend(FrameworkKind kind);

/// Factory with explicit cost calibration (ablation benches).
std::unique_ptr<Backend> make_backend(FrameworkKind kind,
                                      const BackendCosts& costs);

}  // namespace darl::frameworks
