#include "darl/frameworks/worker.hpp"

#include "darl/common/error.hpp"
#include "darl/obs/metrics.hpp"
#include "darl/obs/trace.hpp"

namespace darl::frameworks {

RolloutWorker::RolloutWorker(std::size_t id, std::unique_ptr<env::Env> env,
                             std::unique_ptr<rl::RolloutActor> actor,
                             std::uint64_t seed)
    : id_(id), actor_(std::move(actor)), rng_(seed) {
  DARL_CHECK(env != nullptr, "worker got a null environment");
  DARL_CHECK(actor_ != nullptr, "worker got a null actor");
  env->seed(Rng(seed).split(0xE57).seed());
  env_ = std::make_unique<env::EpisodeMonitor>(std::move(env));
}

void RolloutWorker::sync(const Vec& params) { actor_->set_params(params); }

rl::WorkerBatch RolloutWorker::collect(std::size_t n_steps) {
  DARL_SPAN_V("worker.collect", "worker", id_);
  rl::WorkerBatch batch;
  batch.worker_id = id_;
  batch.transitions.reserve(n_steps);

  if (!started_) {
    obs_ = env_->reset();
    started_ = true;
  }
  for (std::size_t i = 0; i < n_steps; ++i) {
    const rl::ActOutput act = actor_->act(obs_, rng_);
    ++cost_.inferences;
    const env::StepResult r = env_->step(act.action);
    ++cost_.steps;

    rl::Transition tr;
    tr.obs = obs_;
    tr.action = act.action;
    tr.reward = r.reward;
    tr.next_obs = r.observation;
    tr.terminated = r.terminated;
    tr.truncated = r.truncated;
    tr.log_prob = act.log_prob;
    batch.transitions.push_back(std::move(tr));

    if (r.done()) {
      obs_ = env_->reset();
    } else {
      obs_ = r.observation;
    }
  }
  const double env_cost = env_->take_compute_cost();
  cost_.env_cost_units += env_cost;
  // Surface the collection cost into the process-wide registry (the
  // CollectCost struct itself stays backend-internal).
  DARL_COUNTER_ADD("worker.steps", n_steps);
  DARL_COUNTER_ADD("worker.inferences", n_steps);
  DARL_GAUGE_ADD("worker.env_cost_units", env_cost);
  return batch;
}

CollectCost RolloutWorker::take_cost() {
  CollectCost c = cost_;
  cost_ = CollectCost{};
  return c;
}

const std::vector<env::EpisodeRecord>& RolloutWorker::episodes() const {
  return env_->episodes();
}

}  // namespace darl::frameworks
