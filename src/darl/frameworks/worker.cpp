#include "darl/frameworks/worker.hpp"

#include "darl/common/error.hpp"
#include "darl/obs/metrics.hpp"
#include "darl/obs/trace.hpp"

namespace darl::frameworks {

RolloutWorker::RolloutWorker(std::size_t id, std::unique_ptr<env::Env> env,
                             std::unique_ptr<rl::RolloutActor> actor,
                             std::uint64_t seed)
    : id_(id), actor_(std::move(actor)), rng_(seed) {
  DARL_CHECK(env != nullptr, "worker got a null environment");
  DARL_CHECK(actor_ != nullptr, "worker got a null actor");
  env->seed(Rng(seed).split(0xE57).seed());
  env_ = std::make_unique<env::EpisodeMonitor>(std::move(env));
}

RolloutWorker::RolloutWorker(std::size_t id, const env::EnvFactory& factory,
                             std::size_t n_envs,
                             std::unique_ptr<rl::RolloutActor> actor,
                             std::uint64_t seed)
    : id_(id), actor_(std::move(actor)), rng_(seed) {
  DARL_CHECK(actor_ != nullptr, "worker got a null actor");
  DARL_CHECK(n_envs > 0, "vectorized worker needs at least one env");
  // Same seed derivation as the scalar flavour; SyncVecEnv splits it per
  // sub-env.
  vec_ = std::make_unique<env::SyncVecEnv>(factory, n_envs,
                                           Rng(seed).split(0xE57).seed());
}

void RolloutWorker::sync(const Vec& params) { actor_->set_params(params); }

rl::WorkerBatch RolloutWorker::collect(std::size_t n_steps) {
  DARL_SPAN_V("worker.collect", "worker", id_);
  if (vec_) return collect_vec(n_steps);
  rl::WorkerBatch batch;
  batch.worker_id = id_;
  batch.transitions.reserve(n_steps);

  if (!started_) {
    obs_ = env_->reset();
    started_ = true;
  }
  for (std::size_t i = 0; i < n_steps; ++i) {
    const rl::ActOutput act = actor_->act(obs_, rng_);
    ++cost_.inferences;
    const env::StepResult r = env_->step(act.action);
    ++cost_.steps;

    rl::Transition tr;
    tr.obs = obs_;
    tr.action = act.action;
    tr.reward = r.reward;
    tr.next_obs = r.observation;
    tr.terminated = r.terminated;
    tr.truncated = r.truncated;
    tr.log_prob = act.log_prob;
    batch.transitions.push_back(std::move(tr));

    if (r.done()) {
      obs_ = env_->reset();
    } else {
      obs_ = r.observation;
    }
  }
  const double env_cost = env_->take_compute_cost();
  cost_.env_cost_units += env_cost;
  // Surface the collection cost into the process-wide registry (the
  // CollectCost struct itself stays backend-internal).
  DARL_COUNTER_ADD("worker.steps", n_steps);
  DARL_COUNTER_ADD("worker.inferences", n_steps);
  DARL_GAUGE_ADD("worker.env_cost_units", env_cost);
  return batch;
}

rl::WorkerBatch RolloutWorker::collect_vec(std::size_t n_steps) {
  const std::size_t n = vec_->n_envs();
  DARL_CHECK(n_steps % n == 0, "collect: " << n_steps
                                           << " steps not divisible by " << n
                                           << " sub-envs");
  rl::WorkerBatch batch;
  batch.worker_id = id_;
  batch.transitions.reserve(n_steps);
  const std::size_t rounds = n_steps / n;

  if (!started_) {
    vec_obs_ = vec_->reset();
    started_ = true;
  }
  acts_.resize(n);
  actions_.resize(n);
  env_buf_.resize(n);
  for (auto& buf : env_buf_) {
    buf.clear();
    buf.reserve(rounds);
  }

  for (std::size_t t = 0; t < rounds; ++t) {
    // One batched policy evaluation across all sub-envs; rng draws happen
    // per sub-env in slot order inside act_batch.
    actor_->act_batch(vec_obs_, rng_, acts_);
    cost_.inferences += n;
    for (std::size_t e = 0; e < n; ++e) actions_[e] = acts_[e].action;
    env::VecStepResult r = vec_->step(actions_);
    cost_.steps += n;

    for (std::size_t e = 0; e < n; ++e) {
      rl::Transition tr;
      tr.obs = std::move(vec_obs_[e]);
      tr.action = std::move(actions_[e]);
      tr.reward = r.reward[e];
      const bool ended = r.terminated[e] || r.truncated[e];
      // On auto-reset, observation[e] is already the next episode's first
      // observation; the transition must record the terminal one.
      tr.next_obs = ended ? std::move(r.final_observation[e])
                          : r.observation[e];
      tr.terminated = r.terminated[e];
      tr.truncated = r.truncated[e];
      tr.log_prob = acts_[e].log_prob;
      env_buf_[e].push_back(std::move(tr));
    }
    vec_obs_ = std::move(r.observation);
  }

  // Concatenate per-env segments so each sub-env's transitions stay
  // temporally contiguous (GAE / v-trace treat a WorkerBatch as one
  // stream). A segment cut mid-episode is marked truncated so consumers
  // bootstrap from next_obs instead of chaining into the next segment.
  for (std::size_t e = 0; e < n; ++e) {
    if (!env_buf_[e].empty() && !env_buf_[e].back().done()) {
      env_buf_[e].back().truncated = true;
    }
    for (auto& tr : env_buf_[e]) batch.transitions.push_back(std::move(tr));
  }

  const double env_cost = vec_->take_compute_cost();
  cost_.env_cost_units += env_cost;
  DARL_COUNTER_ADD("worker.steps", n_steps);
  DARL_COUNTER_ADD("worker.inferences", n_steps);
  DARL_GAUGE_ADD("worker.env_cost_units", env_cost);
  return batch;
}

CollectCost RolloutWorker::take_cost() {
  CollectCost c = cost_;
  cost_ = CollectCost{};
  return c;
}

const std::vector<env::EpisodeRecord>& RolloutWorker::episodes() const {
  if (vec_) {
    episodes_cache_ = vec_->all_episodes();
    return episodes_cache_;
  }
  return env_->episodes();
}

}  // namespace darl::frameworks
