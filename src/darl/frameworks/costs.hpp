// darl/frameworks/costs.hpp
//
// Calibration constants of the simulated cost model, per framework.
//
// The paper's absolute times/energies come from Python frameworks driving a
// CPU-heavy proprietary simulator on Xeon W-2102 nodes; our reproduction
// preserves the *shape* of those numbers (who is fast, who is frugal, where
// the RK-order penalty lands) through these constants. They are calibrated
// once against the anchor solutions the paper text cites (2, 5, 7, 8, 11,
// 14, 16 — see EXPERIMENTS.md) and then frozen; benches print them for
// transparency.

#pragma once

#include "darl/frameworks/types.hpp"

namespace darl::frameworks {

/// Per-backend execution-cost profile (simulated seconds/multipliers).
struct BackendCosts {
  /// Seconds of worker-core time per environment compute-cost unit (one
  /// ODE right-hand-side evaluation for the airdrop simulator).
  double env_sec_per_cost_unit = 2.4e-3;

  /// Fixed per-environment-step framework overhead on the worker core
  /// (serialization, Python dispatch, driver bookkeeping...).
  double per_step_overhead_s = 2.0e-3;

  /// Multiplier on policy-inference MFLOPs when converting to core time
  /// (the "tiny network, big framework" tax; < 1 never happens in Python).
  double inference_tax = 40.0;

  /// Extra discount on inference when the backend batches observations
  /// across parallel environments (Stable Baselines / TF-Agents style).
  double inference_batch_efficiency = 1.0;

  /// Multiplier on learner MFLOPs when converting to core time.
  double train_tax = 40.0;

  /// Parallel efficiency of the learner across the cores of its node.
  double train_parallel_efficiency = 0.75;

  /// Per-iteration coordination cost (seconds of makespan, no core busy).
  double iteration_overhead_s = 0.25;
};

/// The frozen calibration for each framework (see header comment).
BackendCosts default_costs(FrameworkKind kind);

}  // namespace darl::frameworks
