#include "darl/frameworks/costs.hpp"

namespace darl::frameworks {

BackendCosts default_costs(FrameworkKind kind) {
  BackendCosts c;
  switch (kind) {
    case FrameworkKind::RayRllib:
      // Ray's actor machinery adds per-step and per-iteration overhead but
      // its learner path is lean.
      c.per_step_overhead_s = 2.6e-3;
      c.inference_tax = 45.0;
      c.inference_batch_efficiency = 1.0;  // per-worker, unbatched inference
      c.train_tax = 38.0;
      c.iteration_overhead_s = 0.6;
      break;
    case FrameworkKind::StableBaselines:
      // Synchronous vectorized envs: lockstep costs a little per step, but
      // inference is batched across environments.
      c.per_step_overhead_s = 2.0e-3;
      c.inference_tax = 45.0;
      c.inference_batch_efficiency = 0.45;
      c.train_tax = 42.0;
      c.iteration_overhead_s = 0.2;
      break;
    case FrameworkKind::TfAgents:
      // TF graph execution: lowest per-step overhead and the most
      // cost-effective CPU use (the paper's explanation of its low power).
      c.per_step_overhead_s = 1.4e-3;
      c.inference_tax = 32.0;
      c.inference_batch_efficiency = 0.40;
      c.train_tax = 30.0;
      c.iteration_overhead_s = 0.25;
      break;
  }
  return c;
}

}  // namespace darl::frameworks
