#include "darl/common/error.hpp"
#include "darl/common/stopwatch.hpp"
#include "darl/frameworks/backend.hpp"
#include "darl/obs/trace.hpp"

namespace darl::frameworks {

StableBaselinesBackend::StableBaselinesBackend(BackendCosts costs)
    : BackendBase(costs) {}

TrainResult StableBaselinesBackend::run(const TrainRequest& request) {
  const auto& dep = request.deployment;
  DARL_CHECK(dep.nodes == 1,
             "Stable Baselines parallelizes on a single node (requested "
                 << dep.nodes << " nodes)");
  DARL_CHECK(dep.cores_per_node >= 1, "invalid core count");
  DARL_CHECK(request.total_timesteps > 0, "no timesteps requested");

  Stopwatch wall;

  auto probe = request.env_factory();
  const std::size_t obs_dim = probe->observation_space().dim();
  const env::ActionSpace action_space = probe->action_space();
  probe.reset();

  auto algo = rl::make_algorithm(request.algo, obs_dim, action_space,
                                 Rng(request.seed).split(1).seed());

  // One vectorized environment per CPU core (§V-d of the paper). The
  // learner consumes a batch after every `steps_per_env` lockstep sweeps,
  // so the total batch — and with it the update frequency per sample —
  // scales with the core count.
  const std::size_t n_envs = dep.cores_per_node;
  auto workers = make_workers(request, *algo, n_envs);

  sim::SimCluster cluster(sim::ClusterSpec::paper_testbed(1, dep.cores_per_node));
  const double inference_mflop = algo->make_actor()->inference_cost_mflop();

  const std::size_t per_env = std::max<std::size_t>(1, request.steps_per_env);

  TrainResult result;
  std::size_t steps_done = 0;
  rl::TrainStats last_stats;

  while (steps_done < request.total_timesteps) {
    Stopwatch phase;
    // Synchronous vectorized collection: all environments advance in
    // lockstep with a fresh policy (no staleness on a single node). The
    // env physics runs on the per-core workers; inference happens batched
    // on the driver, so it is charged separately below.
    const Vec params = algo->policy_params();
    {
      DARL_SPAN("backend.sync");
      for (std::size_t i = 0; i < n_envs; ++i) workers[i]->sync(params);
    }
    result.sync_wall_seconds += phase.seconds();
    phase.reset();

    std::vector<rl::WorkerBatch> batches(n_envs);
    {
      DARL_SPAN("backend.collect");
      for (std::size_t i = 0; i < n_envs; ++i) {
        batches[i] = workers[i]->collect(per_env);
      }

      std::vector<sim::SimCluster::WorkerLoad> loads;
      double total_inferences = 0.0;
      for (std::size_t i = 0; i < n_envs; ++i) {
        CollectCost cost = workers[i]->take_cost();
        total_inferences += static_cast<double>(cost.inferences);
        cost.inferences = 0;  // env stepping only; inference charged batched
        loads.push_back({0, worker_busy_seconds(cost, inference_mflop)});
      }
      cluster.run_parallel_phase(loads);

      // Batched driver inference: one core, discounted by the vectorized
      // batch efficiency.
      const double inf_mflop = total_inferences * inference_mflop *
                               costs_.inference_tax *
                               costs_.inference_batch_efficiency;
      cluster.run_compute(0, cluster.seconds_for_mflop(0, inf_mflop), 1);
    }
    result.collect_wall_seconds += phase.seconds();
    phase.reset();

    // Learner update across the node's cores.
    {
      DARL_SPAN("backend.learn");
      last_stats = algo->train(batches);
      const double train_core_seconds = cluster.seconds_for_mflop(
          0, last_stats.train_cost_mflop * costs_.train_tax);
      cluster.run_compute(0, train_core_seconds, dep.cores_per_node,
                          costs_.train_parallel_efficiency);
      cluster.run_idle(costs_.iteration_overhead_s);
    }
    result.learn_wall_seconds += phase.seconds();

    steps_done += per_env * n_envs;
    ++result.iterations;
  }

  result.timesteps = steps_done;
  result.final_policy_loss = last_stats.policy_loss;
  result.final_value_loss = last_stats.value_loss;
  result.final_entropy = last_stats.entropy;
  finalize(request, *algo, workers, cluster, result);
  result.wall_seconds = wall.seconds();
  return result;
}

}  // namespace darl::frameworks
