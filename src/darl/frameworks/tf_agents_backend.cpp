#include <thread>

#include "darl/common/error.hpp"
#include "darl/common/stopwatch.hpp"
#include "darl/frameworks/backend.hpp"
#include "darl/obs/trace.hpp"

namespace darl::frameworks {

TfAgentsBackend::TfAgentsBackend(BackendCosts costs) : BackendBase(costs) {}

TrainResult TfAgentsBackend::run(const TrainRequest& request) {
  const auto& dep = request.deployment;
  DARL_CHECK(dep.nodes == 1,
             "TF-Agents parallelizes on a single node (requested "
                 << dep.nodes << " nodes)");
  DARL_CHECK(dep.cores_per_node >= 1, "invalid core count");
  DARL_CHECK(request.total_timesteps > 0, "no timesteps requested");

  Stopwatch wall;

  auto probe = request.env_factory();
  const std::size_t obs_dim = probe->observation_space().dim();
  const env::ActionSpace action_space = probe->action_space();
  probe.reset();

  auto algo = rl::make_algorithm(request.algo, obs_dim, action_space,
                                 Rng(request.seed).split(1).seed());

  // Parallel driver: per-core environment workers collect a *fixed total*
  // batch each iteration (collection sizing does not depend on the core
  // count, unlike Stable Baselines), with batched inference.
  const std::size_t n_workers = dep.cores_per_node;
  auto workers = make_workers(request, *algo, n_workers);

  sim::SimCluster cluster(sim::ClusterSpec::paper_testbed(1, dep.cores_per_node));
  const double inference_mflop = algo->make_actor()->inference_cost_mflop();

  const std::size_t per_worker =
      std::max<std::size_t>(1, request.train_batch_total / n_workers);

  TrainResult result;
  std::size_t steps_done = 0;
  rl::TrainStats last_stats;

  const std::int64_t obs_trial = obs::current_trial();

  while (steps_done < request.total_timesteps) {
    Stopwatch phase;
    const Vec params = algo->policy_params();
    {
      DARL_SPAN("backend.sync");
      for (std::size_t i = 0; i < n_workers; ++i) workers[i]->sync(params);
    }
    result.sync_wall_seconds += phase.seconds();
    phase.reset();

    std::vector<rl::WorkerBatch> batches(n_workers);
    {
      DARL_SPAN("backend.collect");
      std::vector<std::thread> threads;
      threads.reserve(n_workers);
      for (std::size_t i = 0; i < n_workers; ++i) {
        threads.emplace_back([&, i] {
          obs::TrialScope tag(obs_trial);
          batches[i] = workers[i]->collect(per_worker);
        });
      }
      for (auto& t : threads) t.join();

      std::vector<sim::SimCluster::WorkerLoad> loads;
      loads.reserve(n_workers);
      for (std::size_t i = 0; i < n_workers; ++i) {
        const CollectCost cost = workers[i]->take_cost();
        loads.push_back({0, worker_busy_seconds(cost, inference_mflop)});
      }
      cluster.run_parallel_phase(loads);
    }
    result.collect_wall_seconds += phase.seconds();
    phase.reset();

    {
      DARL_SPAN("backend.learn");
      last_stats = algo->train(batches);
      const double train_core_seconds = cluster.seconds_for_mflop(
          0, last_stats.train_cost_mflop * costs_.train_tax);
      cluster.run_compute(0, train_core_seconds, dep.cores_per_node,
                          costs_.train_parallel_efficiency);
      cluster.run_idle(costs_.iteration_overhead_s);
    }
    result.learn_wall_seconds += phase.seconds();

    steps_done += per_worker * n_workers;
    ++result.iterations;
  }

  result.timesteps = steps_done;
  result.final_policy_loss = last_stats.policy_loss;
  result.final_value_loss = last_stats.value_loss;
  result.final_entropy = last_stats.entropy;
  finalize(request, *algo, workers, cluster, result);
  result.wall_seconds = wall.seconds();
  return result;
}

}  // namespace darl::frameworks
