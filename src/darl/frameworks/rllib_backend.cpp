#include <thread>

#include "darl/common/error.hpp"
#include "darl/common/stopwatch.hpp"
#include "darl/frameworks/backend.hpp"
#include "darl/obs/trace.hpp"

namespace darl::frameworks {

RllibBackend::RllibBackend(BackendCosts costs) : BackendBase(costs) {}

TrainResult RllibBackend::run(const TrainRequest& request) {
  const auto& dep = request.deployment;
  DARL_CHECK(dep.nodes >= 1 && dep.cores_per_node >= 1,
             "invalid deployment " << dep.nodes << "x" << dep.cores_per_node);
  DARL_CHECK(request.total_timesteps > 0, "no timesteps requested");

  Stopwatch wall;

  // Probe the environment interface.
  auto probe = request.env_factory();
  const std::size_t obs_dim = probe->observation_space().dim();
  const env::ActionSpace action_space = probe->action_space();
  probe.reset();

  auto algo = rl::make_algorithm(request.algo, obs_dim, action_space,
                                 Rng(request.seed).split(1).seed());

  // One rollout worker per core on every node; the learner shares node 0.
  const std::size_t n_workers = dep.nodes * dep.cores_per_node;
  auto workers = make_workers(request, *algo, n_workers);
  const auto worker_node = [&](std::size_t i) { return i / dep.cores_per_node; };

  sim::SimCluster cluster(
      sim::ClusterSpec::paper_testbed(dep.nodes, dep.cores_per_node));
  const double inference_mflop = algo->make_actor()->inference_cost_mflop();

  // Asynchronous pipeline model for multi-node deployments: remote workers
  // act with the previous iteration's parameter snapshot, and their sample
  // batches arrive one update cycle late — so the learner always consumes
  // remote experience that is moderately but consistently off-policy.
  Vec params_current = algo->policy_params();
  Vec params_prev = params_current;   // one update cycle old
  Vec params_prev2 = params_current;  // two update cycles old
  std::vector<rl::WorkerBatch> delayed_remote;

  // Per-batch staleness accounting: the learner's update count when a
  // batch is consumed minus the parameter version it was collected with
  // (version v = parameters after v train calls; the initial snapshot is
  // v0). The multi-process runtime computes the same quantity from the
  // version tags actually carried on the wire; both paths see the same
  // schedule, so the NetStaleness study metric is transport-independent.
  std::uint64_t version_current = 0;
  std::uint64_t version_prev = 0;
  std::uint64_t version_prev2 = 0;
  std::uint64_t delayed_remote_version = 0;
  double staleness_sum = 0.0;
  std::size_t staleness_batches = 0;

  const std::size_t per_worker =
      std::max<std::size_t>(1, request.train_batch_total / n_workers);

  TrainResult result;
  std::size_t steps_done = 0;
  rl::TrainStats last_stats;
  // Spans emitted by the collection threads below re-tag themselves with
  // the trial this backend runs under (thread-locals do not inherit).
  const std::int64_t obs_trial = obs::current_trial();

  while (steps_done < request.total_timesteps) {
    Stopwatch phase;
    // --- policy sync. Workers co-located with the learner read the fresh
    // parameters; remote workers act with the previous iteration's
    // snapshot, modelling asynchronous parameter shipping. This staleness
    // is the mechanism behind the paper's observation that multi-node
    // RLlib runs trade reward reproducibility for speed (§VI-D).
    // Single-node deployments sync workers synchronously with the learner.
    // Multi-node deployments broadcast weights through the cluster object
    // store: co-located workers act on the previous cycle's snapshot and
    // remote workers on one older still (broadcast + in-flight latency).
    {
      DARL_SPAN("backend.sync");
      for (std::size_t i = 0; i < n_workers; ++i) {
        if (dep.nodes == 1) {
          workers[i]->sync(params_current);
        } else {
          workers[i]->sync(worker_node(i) == 0 ? params_prev : params_prev2);
        }
      }
      for (std::size_t node = 1; node < dep.nodes; ++node) {
        cluster.run_transfer(0, node, static_cast<double>(algo->params_bytes()));
      }
    }
    result.sync_wall_seconds += phase.seconds();
    phase.reset();

    // --- parallel collection on real threads (one per worker; workers are
    // self-contained, so the result is schedule-independent).
    std::vector<rl::WorkerBatch> batches(n_workers);
    {
      DARL_SPAN("backend.collect");
      std::vector<std::thread> threads;
      threads.reserve(n_workers);
      for (std::size_t i = 0; i < n_workers; ++i) {
        threads.emplace_back([&, i] {
          obs::TrialScope tag(obs_trial);
          batches[i] = workers[i]->collect(per_worker);
        });
      }
      for (auto& t : threads) t.join();

      // --- simulated collection phase.
      std::vector<sim::SimCluster::WorkerLoad> loads;
      loads.reserve(n_workers);
      for (std::size_t i = 0; i < n_workers; ++i) {
        const CollectCost cost = workers[i]->take_cost();
        loads.push_back({worker_node(i), worker_busy_seconds(cost, inference_mflop)});
      }
      cluster.run_parallel_phase(loads);
    }
    result.collect_wall_seconds += phase.seconds();
    phase.reset();

    // --- sample shipping from remote nodes to the learner.
    {
      DARL_SPAN("backend.sync");
      for (std::size_t node = 1; node < dep.nodes; ++node) {
        double bytes = 0.0;
        for (std::size_t i = 0; i < n_workers; ++i) {
          if (worker_node(i) == node) {
            bytes += static_cast<double>(batches[i].transitions.size()) *
                     static_cast<double>(algo->transition_bytes());
          }
        }
        cluster.run_transfer(node, 0, bytes);
      }
    }
    result.sync_wall_seconds += phase.seconds();
    phase.reset();

    // --- learner update on node 0 (all its cores). Remote batches join
    // the pipeline one iteration late; local batches are consumed fresh.
    {
      DARL_SPAN("backend.learn");
      const std::uint64_t updates_done = result.iterations;
      std::vector<rl::WorkerBatch> train_batches = std::move(delayed_remote);
      // Remote batches were collected under prev2 one iteration ago.
      staleness_sum += static_cast<double>(train_batches.size()) *
                       static_cast<double>(updates_done - delayed_remote_version);
      staleness_batches += train_batches.size();
      delayed_remote.clear();
      const std::uint64_t local_version =
          dep.nodes == 1 ? version_current : version_prev;
      for (std::size_t i = 0; i < n_workers; ++i) {
        if (worker_node(i) == 0) {
          staleness_sum += static_cast<double>(updates_done - local_version);
          ++staleness_batches;
          train_batches.push_back(std::move(batches[i]));
        } else {
          delayed_remote.push_back(std::move(batches[i]));
        }
      }
      delayed_remote_version = version_prev2;
      params_prev2 = params_prev;
      params_prev = params_current;
      version_prev2 = version_prev;
      version_prev = version_current;
      last_stats = algo->train(train_batches);
      const double train_core_seconds = cluster.seconds_for_mflop(
          0, last_stats.train_cost_mflop * costs_.train_tax);
      cluster.run_compute(0, train_core_seconds, dep.cores_per_node,
                          costs_.train_parallel_efficiency);
      cluster.run_idle(costs_.iteration_overhead_s);
      params_current = algo->policy_params();
      ++version_current;
    }
    result.learn_wall_seconds += phase.seconds();

    steps_done += per_worker * n_workers;
    ++result.iterations;
  }

  result.timesteps = steps_done;
  result.net_staleness =
      staleness_batches > 0
          ? staleness_sum / static_cast<double>(staleness_batches)
          : 0.0;
  result.final_policy_loss = last_stats.policy_loss;
  result.final_value_loss = last_stats.value_loss;
  result.final_entropy = last_stats.entropy;
  finalize(request, *algo, workers, cluster, result);
  result.wall_seconds = wall.seconds();
  return result;
}

}  // namespace darl::frameworks
