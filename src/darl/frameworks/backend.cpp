#include "darl/frameworks/backend.hpp"

#include <algorithm>

#include "darl/common/error.hpp"
#include "darl/common/stats.hpp"
#include "darl/obs/metrics.hpp"
#include "darl/obs/trace.hpp"
#include "darl/rl/evaluate.hpp"

namespace darl::frameworks {

double BackendBase::worker_busy_seconds(const CollectCost& cost,
                                        double inference_mflop) const {
  const double env_s = cost.env_cost_units * costs_.env_sec_per_cost_unit;
  const double overhead_s =
      static_cast<double>(cost.steps) * costs_.per_step_overhead_s;
  // Inference converted at the paper-testbed core throughput with the
  // framework tax; batching discounts are applied by the caller when the
  // backend batches across environments.
  const double inf_mflop = static_cast<double>(cost.inferences) *
                           inference_mflop * costs_.inference_tax *
                           costs_.inference_batch_efficiency;
  const double inf_s = inf_mflop / sim::NodeSpec{}.core_mflop_per_s;
  return env_s + overhead_s + inf_s;
}

std::vector<std::unique_ptr<RolloutWorker>> BackendBase::make_workers(
    const TrainRequest& request, const rl::Algorithm& algo, std::size_t n) const {
  DARL_CHECK(n > 0, "backend needs at least one worker");
  const Rng seeder(request.seed);
  std::vector<std::unique_ptr<RolloutWorker>> workers;
  workers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto e = request.env_factory();
    DARL_CHECK(e != nullptr, "env factory returned null");
    workers.push_back(std::make_unique<RolloutWorker>(
        i, std::move(e), algo.make_actor(), seeder.split(100 + i).seed()));
  }
  return workers;
}

void BackendBase::finalize(
    const TrainRequest& request, rl::Algorithm& algo,
    const std::vector<std::unique_ptr<RolloutWorker>>& workers,
    const sim::SimCluster& cluster, TrainResult& result) const {
  std::vector<std::vector<env::EpisodeRecord>> episodes_per_worker;
  episodes_per_worker.reserve(workers.size());
  for (const auto& w : workers) episodes_per_worker.push_back(w->episodes());
  finalize(request, algo, episodes_per_worker, cluster, result);
}

void BackendBase::finalize(
    const TrainRequest& request, rl::Algorithm& algo,
    const std::vector<std::vector<env::EpisodeRecord>>& episodes_per_worker,
    const sim::SimCluster& cluster, TrainResult& result) const {
  DARL_SPAN("backend.eval");
  DARL_COUNTER_ADD("backend.train_jobs", 1);
  // Training-episode diagnostics: mean score of the most recent episodes
  // (up to 50 per worker).
  RunningStats train_scores;
  std::size_t episodes = 0;
  for (const auto& eps : episodes_per_worker) {
    episodes += eps.size();
    const std::size_t take = std::min<std::size_t>(eps.size(), 50);
    for (std::size_t i = eps.size() - take; i < eps.size(); ++i)
      train_scores.push(eps[i].score);
  }
  result.episodes = episodes;
  result.train_reward = train_scores.mean();

  // The Reward metric: greedy evaluation of the final policy on a fresh
  // environment with a fixed evaluation seed (independent of the training
  // stream, like re-running the trained model on the simulator).
  auto eval_env = request.env_factory();
  eval_env->seed(Rng(request.seed).split(0xEA1).seed());
  auto eval_actor = algo.make_actor();
  eval_actor->set_params(algo.policy_params());
  Rng eval_rng(Rng(request.seed).split(777).seed());
  RunningStats scores;
  for (std::size_t ep = 0; ep < request.eval_episodes; ++ep) {
    const rl::EvalResult r =
        rl::evaluate_policy(*eval_actor, *eval_env, 1, eval_rng,
                            /*stochastic=*/false);
    scores.push(r.mean_score);
  }
  result.reward = scores.mean();
  result.reward_stddev = scores.stddev();
  result.sim_seconds = cluster.elapsed_seconds();
  result.sim_energy_joules = cluster.energy_joules();
  result.final_policy = algo.policy_params();
}

std::unique_ptr<Backend> make_backend(FrameworkKind kind) {
  return make_backend(kind, default_costs(kind));
}

std::unique_ptr<Backend> make_backend(FrameworkKind kind,
                                      const BackendCosts& costs) {
  switch (kind) {
    case FrameworkKind::RayRllib: return std::make_unique<RllibBackend>(costs);
    case FrameworkKind::StableBaselines:
      return std::make_unique<StableBaselinesBackend>(costs);
    case FrameworkKind::TfAgents:
      return std::make_unique<TfAgentsBackend>(costs);
  }
  throw InvalidArgument("unknown FrameworkKind");
}

}  // namespace darl::frameworks
