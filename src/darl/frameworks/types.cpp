#include "darl/frameworks/types.hpp"

namespace darl::frameworks {

const char* framework_name(FrameworkKind kind) {
  switch (kind) {
    case FrameworkKind::RayRllib: return "RLlib";
    case FrameworkKind::StableBaselines: return "Stable Baselines";
    case FrameworkKind::TfAgents: return "TF-Agents";
  }
  return "???";
}

}  // namespace darl::frameworks
