// darl/frameworks/worker.hpp
//
// A rollout worker: one private environment instance plus an inference-only
// policy copy and a private random stream. Workers are the unit every
// backend parallelizes over; because each worker is self-contained, running
// them on real threads is deterministic regardless of scheduling.

#pragma once

#include <memory>

#include "darl/common/rng.hpp"
#include "darl/env/vec_env.hpp"
#include "darl/env/wrappers.hpp"
#include "darl/rl/algorithm.hpp"

namespace darl::frameworks {

/// Costs a worker accumulated while collecting (simulated units).
struct CollectCost {
  double env_cost_units = 0.0;  ///< env-internal compute (ODE RHS evals)
  std::size_t inferences = 0;   ///< policy forward passes
  std::size_t steps = 0;        ///< environment steps taken
};

/// One rollout worker. Not thread-safe; exactly one thread may drive it at
/// a time (different workers may run concurrently).
class RolloutWorker {
 public:
  /// `env` is wrapped in an EpisodeMonitor internally. `actor` must come
  /// from the Algorithm this worker feeds.
  RolloutWorker(std::size_t id, std::unique_ptr<env::Env> env,
                std::unique_ptr<rl::RolloutActor> actor, std::uint64_t seed);

  /// Vectorized worker: `n_envs` sub-environments stepped in lockstep, with
  /// policy evaluation batched across them via RolloutActor::act_batch.
  /// collect() then requires n_steps to be a multiple of n_envs.
  RolloutWorker(std::size_t id, const env::EnvFactory& factory,
                std::size_t n_envs, std::unique_ptr<rl::RolloutActor> actor,
                std::uint64_t seed);

  /// Refresh the worker's policy snapshot.
  void sync(const Vec& params);

  /// Collect exactly `n_steps` transitions (crossing episode boundaries
  /// with auto-reset). Returns the batch; costs accumulate into cost().
  /// A vectorized worker returns the transitions grouped per sub-env so
  /// each sub-sequence stays temporally contiguous, with a segment that
  /// ends mid-episode marked truncated (consumers bootstrap from next_obs).
  rl::WorkerBatch collect(std::size_t n_steps);

  /// Number of sub-environments (1 for a scalar worker).
  std::size_t n_envs() const { return vec_ ? vec_->n_envs() : 1; }

  /// Drain the accumulated collection cost counters.
  CollectCost take_cost();

  /// Episode records observed so far (score = paper Reward metric).
  const std::vector<env::EpisodeRecord>& episodes() const;

  std::size_t id() const { return id_; }

 private:
  rl::WorkerBatch collect_vec(std::size_t n_steps);

  std::size_t id_;
  std::unique_ptr<env::EpisodeMonitor> env_;   // scalar flavour
  std::unique_ptr<env::SyncVecEnv> vec_;       // vectorized flavour
  std::unique_ptr<rl::RolloutActor> actor_;
  Rng rng_;
  Vec obs_;
  bool started_ = false;
  CollectCost cost_;

  // Vectorized-collect staging (reused across collect calls).
  std::vector<Vec> vec_obs_;
  std::vector<rl::ActOutput> acts_;
  std::vector<Vec> actions_;
  std::vector<std::vector<rl::Transition>> env_buf_;
  mutable std::vector<env::EpisodeRecord> episodes_cache_;
};

}  // namespace darl::frameworks
