// darl/frameworks/types.hpp
//
// Request/result types of the framework-backend layer. A backend runs one
// complete training job (the unit the methodology evaluates per learning
// configuration) and reports the paper's three metrics: Reward, Computation
// Time and Power Consumption.

#pragma once

#include <cstdint>
#include <string>

#include "darl/env/env.hpp"
#include "darl/rl/factory.hpp"

namespace darl::frameworks {

/// The three RL frameworks compared by the paper (§V-b).
enum class FrameworkKind { RayRllib, StableBaselines, TfAgents };

/// Display name ("RLlib", "Stable Baselines", "TF-Agents").
const char* framework_name(FrameworkKind kind);

/// System-level deployment parameters of a learning configuration
/// (the paper's "number of nodes" and "number of CPU cores per node").
struct DeploymentSpec {
  std::size_t nodes = 1;
  std::size_t cores_per_node = 4;
};

/// Everything needed to run one training job.
struct TrainRequest {
  env::EnvFactory env_factory;
  rl::AlgorithmSpec algo;
  DeploymentSpec deployment;
  std::size_t total_timesteps = 200000;
  std::uint64_t seed = 1;

  /// PPO-style iteration sizing. `train_batch_total` is the total number of
  /// transitions consumed per learner update for the batch-oriented
  /// backends (RLlib, TF-Agents). `steps_per_env` is Stable Baselines'
  /// per-environment rollout length (its total batch therefore scales with
  /// the number of vectorized environments — the coupling behind the
  /// paper's solution-14 observation).
  std::size_t train_batch_total = 1024;
  std::size_t steps_per_env = 256;

  /// Final greedy evaluation used to report the Reward metric.
  std::size_t eval_episodes = 50;

  /// Opaque environment specification for multi-process execution: remote
  /// actor processes cannot receive `env_factory` (a closure), so the
  /// distributed runtime ships this string instead and the worker binary's
  /// registered resolver rebuilds an identical factory from it (see
  /// darl/airdrop/spec.hpp for the airdrop codec). Ignored by the
  /// in-process backends; required by DistributedRllibBackend.
  std::string env_spec;
};

/// Outcome of one training job: the study metrics plus diagnostics.
struct TrainResult {
  // --- the paper's evaluation metrics ---
  double reward = 0.0;          ///< mean eval episode score (landing reward)
  double sim_seconds = 0.0;     ///< simulated Computation Time
  double sim_energy_joules = 0.0;  ///< simulated Power Consumption

  // --- diagnostics ---
  double reward_stddev = 0.0;   ///< eval-episode score spread
  double train_reward = 0.0;    ///< mean score of recent training episodes
  double wall_seconds = 0.0;    ///< real host time spent (not a metric)

  /// Host wall time spent inside each training phase (collect = rollout
  /// workers, learn = gradient updates + simulated learner accounting,
  /// sync = policy/sample shipping). Always measured — two clock reads per
  /// phase per iteration — and surfaced per trial in core/report.
  double collect_wall_seconds = 0.0;
  double learn_wall_seconds = 0.0;
  double sync_wall_seconds = 0.0;

  /// Mean parameter staleness of consumed batches, in versions: learner
  /// update count at consumption minus the version the batch was collected
  /// with. 0 for synchronous single-node runs; positive under the
  /// asynchronous multi-node pipeline (RLlib-style backends). Identical by
  /// construction between the in-process and multi-process runtimes — it
  /// is a property of the coordination schedule, not of the transport —
  /// which is what lets campaign CSVs rank on it and stay byte-identical
  /// across both paths (DESIGN.md §17).
  double net_staleness = 0.0;

  std::size_t timesteps = 0;
  std::size_t episodes = 0;
  std::size_t iterations = 0;
  double final_policy_loss = 0.0;
  double final_value_loss = 0.0;
  double final_entropy = 0.0;
  /// The trained policy's flat parameters (load into an actor created by a
  /// matching Algorithm, or persist with rl::save_checkpoint).
  Vec final_policy;
};

}  // namespace darl::frameworks
