// darl/frameworks/distributed.hpp
//
// The multi-process actor–learner runtime (DESIGN.md §17): the same
// coordination schedule as RllibBackend, but remote workers live in real
// actor processes connected over darl/net sockets instead of threads in
// the learner's address space. The learner publishes versioned weights
// through net::ParamServer (serve::PolicyStore hot-swap chain underneath),
// ships version max(t-2, 0) to remote actors at iteration t, and consumes
// their batches one iteration late — exactly the in-process pipeline —
// so reported-cost accounting stays in simcluster and campaign CSVs are
// byte-identical between the two substrates.
//
// Determinism contract (why the CSVs match bit for bit):
//   * worker i everywhere seeds from Rng(seed).split(100 + i), the
//     learner's algorithm from split(1) — same streams as make_workers.
//   * weights travel as checkpoint-v2 text at round-trip precision and
//     batches as precision-17 token streams, so every double is bitwise
//     preserved across the wire.
//   * the learner consumes delayed remote batches sorted by worker id,
//     then local batches in id order — the push order of the in-process
//     loop.
//   * simulated time/energy come from the identical sequence of
//     SimCluster calls; the wall clock never feeds a metric.

#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "darl/env/env.hpp"
#include "darl/frameworks/backend.hpp"

namespace darl::frameworks {

/// Rebuilds an environment factory from the opaque spec string carried in
/// a Job message (e.g. airdrop::airdrop_factory_from_spec). The worker
/// binary registers one; darl/net and this runtime stay case-study
/// agnostic.
using EnvSpecResolver = std::function<env::EnvFactory(const std::string&)>;

/// Configuration of the multi-process runtime.
struct DistributedOptions {
  /// Run RLlib multi-node trials over real processes (darl_study
  /// --distributed). Single-node trials always stay in-process.
  bool enabled = false;

  /// Listen endpoint ("tcp:0" for an ephemeral loopback port,
  /// "unix:/path.sock"). Empty picks a fresh Unix socket under /tmp.
  std::string endpoint;

  /// Actor binary to spawn (argv[0]); empty resolves to "darl_worker"
  /// next to the running executable.
  std::string worker_bin;

  /// Spawn one actor process per remote node (fork/execv). When false the
  /// learner only listens — actors are started externally (tests drive
  /// run_actor on threads; check.sh starts separate processes).
  bool spawn_actors = true;

  /// Deadline for the actor fleet to connect (and for actors to reach the
  /// learner — forwarded in the spawned workers' argv).
  double connect_timeout_s = 30.0;

  /// Per-syscall I/O timeout on established connections: a wedged peer
  /// surfaces as FrameError{TimedOut} instead of a hang.
  double io_timeout_s = 120.0;
};

/// RllibBackend's schedule over real processes: local node-0 workers on
/// threads, one actor process per remote node, weights out / batches in
/// over length-prefixed frames, per-batch staleness accounted from the
/// version tags actually carried on the wire (and published to
/// net.staleness). Requires nodes >= 2 and a non-empty
/// TrainRequest::env_spec.
class DistributedRllibBackend final : public BackendBase {
 public:
  explicit DistributedRllibBackend(
      DistributedOptions options,
      BackendCosts costs = default_costs(FrameworkKind::RayRllib));
  FrameworkKind kind() const override { return FrameworkKind::RayRllib; }
  TrainResult run(const TrainRequest& request) override;

 private:
  DistributedOptions options_;
};

/// The actor-process main loop: connect to the learner, handshake, build
/// the node's rollout workers from the Job, then per iteration load the
/// shipped checkpoint, collect on one thread per worker, and stream one
/// Batch per worker back (bounded outbound queue — a slow learner
/// backpressures collection instead of buffering unboundedly). Returns
/// the number of iterations served; throws NetError/FrameError/WireError
/// on transport or protocol failure.
std::size_t run_actor(const std::string& endpoint, std::size_t node,
                      const EnvSpecResolver& resolver,
                      double connect_timeout_s = 30.0,
                      double io_timeout_s = 120.0);

/// Factory mirroring make_backend.
std::unique_ptr<Backend> make_distributed_backend(
    const DistributedOptions& options);
std::unique_ptr<Backend> make_distributed_backend(
    const DistributedOptions& options, const BackendCosts& costs);

}  // namespace darl::frameworks
